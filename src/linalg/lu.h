// LU decomposition with partial pivoting, and the solve/inverse helpers
// built on it. This is the workhorse behind every (.)^{-1} in the
// matrix-geometric machinery.
#pragma once

#include "linalg/matrix.h"

namespace performa::linalg {

/// LU factorization PA = LU with partial (row) pivoting.
///
/// The factorization is computed once; solves against many right-hand
/// sides reuse it (the QBD solvers exploit this heavily).
class Lu {
 public:
  /// Factor a square matrix. Throws InvalidArgument for non-square input
  /// and NumericalError if the matrix is singular to working precision.
  explicit Lu(const Matrix& a);

  std::size_t order() const noexcept { return lu_.rows(); }

  /// Solve A x = b.
  Vector solve(const Vector& b) const;

  /// Solve A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Solve x A = b (row-vector system), i.e. A^T x^T = b^T.
  Vector solve_left(const Vector& b) const;

  /// Solve X A = B (each row of X solves against A from the left).
  Matrix solve_left(const Matrix& b) const;

  /// A^{-1} (prefer solve() when possible).
  Matrix inverse() const;

  /// det(A), including the pivot sign.
  double determinant() const noexcept;

  /// Smallest |pivot| encountered; a crude singularity indicator.
  double min_pivot() const noexcept { return min_pivot_; }

  /// Cheap 1-norm condition estimate kappa_1(A) ~ ||A||_1 ||A^{-1}||_1,
  /// with ||A^{-1}||_1 lower-bounded by a few Hager '84 ascent sweeps
  /// (two O(n^2) solves each). Accurate to the order of magnitude, which
  /// is what the solver guardrails need to flag ill-conditioned stages.
  double condition_estimate() const;

 private:
  Matrix lu_;                     // combined L (unit lower) and U factors
  std::vector<std::size_t> piv_;  // row permutation
  int pivot_sign_ = 1;
  double min_pivot_ = 0.0;
  double norm1_ = 0.0;            // ||A||_1 of the unfactored input
};

/// One-shot helpers.
Vector solve(const Matrix& a, const Vector& b);
Matrix solve(const Matrix& a, const Matrix& b);
Matrix inverse(const Matrix& a);

}  // namespace performa::linalg
