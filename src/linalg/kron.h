// Kronecker algebra for superposing independent Markov chains.
//
// The N-server service process of the DSN'07 model is built as the
// Kronecker sum of N per-server modulating generators (Sec. 2.2 of the
// paper): Q_N = Q1 ⊕ Q1 ⊕ ... ⊕ Q1, with the modulated Poisson rates
// combining the same way on the diagonal.
#pragma once

#include <vector>

#include "linalg/matrix.h"

namespace performa::linalg {

/// Kronecker product A ⊗ B ((ma*mb) x (na*nb)).
Matrix kron(const Matrix& a, const Matrix& b);

/// Kronecker sum A ⊕ B = A ⊗ I_b + I_a ⊗ B; both inputs must be square.
/// The generator of two independent Markov chains run jointly.
Matrix kron_sum(const Matrix& a, const Matrix& b);

/// n-fold Kronecker power A ⊗ A ⊗ ... ⊗ A (n >= 1).
Matrix kron_power(const Matrix& a, std::size_t n);

/// n-fold Kronecker sum A ⊕ A ⊕ ... ⊕ A (n >= 1); the joint generator of
/// n independent copies of the chain with generator A.
Matrix kron_sum_power(const Matrix& a, std::size_t n);

/// Kronecker product of (row or column) vectors.
Vector kron(const Vector& a, const Vector& b);

// Matrix-free Kronecker-sum application. A^{⊕n} over an m-phase factor has
// m^n rows but only n·m nonzero blocks per row; these kernels walk the
// mixed-radix index space directly, so Q1^{⊕N}·v costs O(n·m^{n+1})
// instead of the O(m^{2n}) materialized product -- the difference between
// N=5 and N in the hundreds for the residual checks in the R-solver.

/// y = (A^{⊕n})·v without materializing the sum (v has length m^n, A m-by-m
/// square, n >= 1).
Vector kron_sum_apply(const Matrix& a, std::size_t n, const Vector& v);

/// y = v·(A^{⊕n}) without materializing the sum.
Vector kron_sum_apply_left(const Matrix& a, std::size_t n, const Vector& v);

/// Heterogeneous variants: y = (A_1 ⊕ A_2 ⊕ ... ⊕ A_k)·v and the left
/// product, with factors of mixed (square) sizes.
Vector kron_sum_apply(const std::vector<Matrix>& factors, const Vector& v);
Vector kron_sum_apply_left(const std::vector<Matrix>& factors,
                           const Vector& v);

/// Y = X·(A^{⊕n}) row-wise and matrix-free (X has m^n columns); rows fan
/// out over the linalg thread pool with a fixed decomposition, so the
/// result is bit-identical for any PERFORMA_THREADS value.
Matrix kron_sum_apply_left(const Matrix& a, std::size_t n, const Matrix& x);

}  // namespace performa::linalg
