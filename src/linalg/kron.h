// Kronecker algebra for superposing independent Markov chains.
//
// The N-server service process of the DSN'07 model is built as the
// Kronecker sum of N per-server modulating generators (Sec. 2.2 of the
// paper): Q_N = Q1 ⊕ Q1 ⊕ ... ⊕ Q1, with the modulated Poisson rates
// combining the same way on the diagonal.
#pragma once

#include "linalg/matrix.h"

namespace performa::linalg {

/// Kronecker product A ⊗ B ((ma*mb) x (na*nb)).
Matrix kron(const Matrix& a, const Matrix& b);

/// Kronecker sum A ⊕ B = A ⊗ I_b + I_a ⊗ B; both inputs must be square.
/// The generator of two independent Markov chains run jointly.
Matrix kron_sum(const Matrix& a, const Matrix& b);

/// n-fold Kronecker power A ⊗ A ⊗ ... ⊗ A (n >= 1).
Matrix kron_power(const Matrix& a, std::size_t n);

/// n-fold Kronecker sum A ⊕ A ⊕ ... ⊕ A (n >= 1); the joint generator of
/// n independent copies of the chain with generator A.
Matrix kron_sum_power(const Matrix& a, std::size_t n);

/// Kronecker product of (row or column) vectors.
Vector kron(const Vector& a, const Vector& b);

}  // namespace performa::linalg
