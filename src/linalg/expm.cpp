#include "linalg/expm.h"

#include <cmath>

#include "linalg/kernels.h"
#include "linalg/lu.h"
#include "obs/deadline.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace performa::linalg {

namespace {

// Padé coefficients for the degree-13 approximant (Higham, "The Scaling and
// Squaring Method for the Matrix Exponential Revisited", 2005).
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: scaling threshold on ||A||_1 below which Padé(13) attains
// double-precision accuracy without squaring.
constexpr double kTheta13 = 5.371920351148152;

Matrix expm_pade13(const Matrix& a, int squarings) {
  const std::size_t n = a.rows();
  Matrix as = a;
  if (squarings > 0) as *= std::ldexp(1.0, -squarings);

  // Evaluate the (13,13) Padé approximant exp(A) ~ (V - U)^{-1} (V + U)
  // with U odd and V even in A.
  const Matrix a2 = as * as;
  const Matrix a4 = a2 * a2;
  const Matrix a6 = a2 * a4;
  const Matrix eye = Matrix::identity(n);

  const Matrix u_inner = a6 * (kPade13[13] * a6 + kPade13[11] * a4 +
                               kPade13[9] * a2) +
                         kPade13[7] * a6 + kPade13[5] * a4 + kPade13[3] * a2 +
                         kPade13[1] * eye;
  const Matrix u = as * u_inner;
  const Matrix v = a6 * (kPade13[12] * a6 + kPade13[10] * a4 +
                         kPade13[8] * a2) +
                   kPade13[6] * a6 + kPade13[4] * a4 + kPade13[2] * a2 +
                   kPade13[0] * eye;

  Matrix result = Lu(v - u).solve(v + u);
  for (int i = 0; i < squarings; ++i) {
    // The squaring phase dominates for large ||A||; poll the cooperative
    // deadline between the O(n^3) squarings so a request cannot wedge
    // its worker inside one expm call.
    if (obs::deadline_expired()) {
      throw DeadlineError("expm: deadline expired during squaring phase");
    }
    result = result * result;
  }
  return result;
}

}  // namespace

Matrix expm(const Matrix& a) {
  obs::Span span("linalg.expm");
  // The Padé evaluation and squaring phase run entirely on operator*, so
  // the active kernel backend decides the tile strategy; record it on the
  // span so traces attribute expm time to the right kernels.
  span.annotate("kernel_backend", std::string(to_string(kernel_backend())));
  static obs::Counter& calls = obs::counter("linalg.expm.calls");
  static obs::Counter& retries = obs::counter("linalg.expm.retries");
  calls.add();
  PERFORMA_EXPECTS(a.is_square() && !a.empty(), "expm: matrix must be square");
  check_finite(a, "expm");

  const double nrm = norm_1(a);
  int squarings = 0;
  if (nrm > kTheta13) {
    squarings = static_cast<int>(std::ceil(std::log2(nrm / kTheta13)));
  }

  // Guardrail: ||exp(A)||_1 <= e^{||A||_1} up to rounding, so a result that
  // is non-finite or blows past that bound (compared in log space to avoid
  // overflow) means the Padé evaluation or the squaring phase lost the
  // value. Retry under tightened scaling -- more squarings shrink the
  // argument the rational approximant actually sees -- before giving up.
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (obs::deadline_expired()) {
      throw DeadlineError("expm: deadline expired before Padé evaluation");
    }
    if (attempt > 0) retries.add();
    const Matrix result = expm_pade13(a, squarings + 4 * attempt);
    if (is_finite(result) &&
        std::log(std::max(norm_1(result), 1e-300)) <= nrm + 10.0) {
      return result;
    }
  }
  throw NonFiniteError(
      "expm: result non-finite or norm-bound violated even after retries "
      "under tightened scaling");
}

}  // namespace performa::linalg
