// Blocked/tiled kernel implementations -- the hot half of the backend
// split described in kernels_detail.h. This translation unit is compiled
// with the widest SIMD the build host offers (see src/linalg/CMakeLists)
// and with FP contraction disabled, so its arithmetic is the exact IEEE
// multiply/add sequence of the reference loops, just executed on wider
// vectors and more threads. See kernels.h for the equivalence and
// determinism contracts.
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "linalg/errors.h"
#include "linalg/kernels_detail.h"
#include "linalg/pool.h"
#include "obs/deadline.h"

namespace performa::linalg::detail {

namespace {

constexpr std::size_t kMr = 4;        // micro-kernel rows
constexpr std::size_t kNr = 8;        // micro-kernel cols
constexpr std::size_t kRowStrip = 32; // rows per pool task in GEMM
constexpr std::size_t kColChunk = 64; // RHS columns per pool task in solves
// Fan out to the pool only when a kernel has at least this many multiply-
// adds; below it the dispatch overhead exceeds the work.
constexpr std::size_t kFanOutWork = 1u << 18;

// mr-by-nr register tile (mr <= kMr, nr <= kNr), full k sweep, accumulators
// held locally so the compiler can keep them out of memory.
template <bool Sub>
inline void micro_tile(std::size_t mr, std::size_t nr, std::size_t kk,
                       const double* a, std::size_t lda, const double* b,
                       std::size_t ldb, double* c, std::size_t ldc) {
  double acc[kMr][kNr];
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j)
      acc[i][j] = Sub ? c[i * ldc + j] : 0.0;
  for (std::size_t p = 0; p < kk; ++p) {
    const double* bp = b + p * ldb;
    for (std::size_t i = 0; i < mr; ++i) {
      const double aip = a[i * lda + p];
      for (std::size_t j = 0; j < nr; ++j) {
        if (Sub) {
          acc[i][j] -= aip * bp[j];
        } else {
          acc[i][j] += aip * bp[j];
        }
      }
    }
  }
  for (std::size_t i = 0; i < mr; ++i)
    for (std::size_t j = 0; j < nr; ++j) c[i * ldc + j] = acc[i][j];
}

// Fixed-shape specialization of the hot interior tile: constant trip counts
// let the compiler fully unroll and vectorize the j loop.
template <bool Sub>
inline void micro_full(std::size_t kk, const double* a, std::size_t lda,
                       const double* b, std::size_t ldb, double* c,
                       std::size_t ldc) {
  double acc[kMr][kNr];
  for (std::size_t i = 0; i < kMr; ++i)
    for (std::size_t j = 0; j < kNr; ++j)
      acc[i][j] = Sub ? c[i * ldc + j] : 0.0;
  for (std::size_t p = 0; p < kk; ++p) {
    const double* bp = b + p * ldb;
    for (std::size_t i = 0; i < kMr; ++i) {
      const double aip = a[i * lda + p];
      for (std::size_t j = 0; j < kNr; ++j) {
        if (Sub) {
          acc[i][j] -= aip * bp[j];
        } else {
          acc[i][j] += aip * bp[j];
        }
      }
    }
  }
  for (std::size_t i = 0; i < kMr; ++i)
    for (std::size_t j = 0; j < kNr; ++j) c[i * ldc + j] = acc[i][j];
}

// Explicit-SIMD interior tile. GCC compiles the generic 4x8 tile above to
// mediocre vector code, so the hot path spells out the broadcast / mul /
// add sequence with intrinsics. CRITICAL for the equivalence contract:
// mul and add stay SEPARATE instructions (never FMA), so each lane
// performs the exact rounding sequence of the scalar reference loop --
// the wide tile is bit-identical to the reference, not merely close.
#if defined(__AVX512F__)

constexpr std::size_t kVecCols = 32;  // 4 rows x 4 zmm = 16 accumulators

template <bool Sub>
inline void micro_simd(std::size_t kk, const double* a, std::size_t lda,
                       const double* b, std::size_t ldb, double* c,
                       std::size_t ldc) {
  __m512d acc[kMr][4];
  for (std::size_t r = 0; r < kMr; ++r)
    for (std::size_t q = 0; q < 4; ++q)
      acc[r][q] = Sub ? _mm512_loadu_pd(c + r * ldc + 8 * q)
                      : _mm512_setzero_pd();
  for (std::size_t p = 0; p < kk; ++p) {
    __m512d bv[4];
    for (std::size_t q = 0; q < 4; ++q)
      bv[q] = _mm512_loadu_pd(b + p * ldb + 8 * q);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m512d av = _mm512_set1_pd(a[r * lda + p]);
      for (std::size_t q = 0; q < 4; ++q) {
        const __m512d prod = _mm512_mul_pd(av, bv[q]);
        acc[r][q] = Sub ? _mm512_sub_pd(acc[r][q], prod)
                        : _mm512_add_pd(acc[r][q], prod);
      }
    }
  }
  for (std::size_t r = 0; r < kMr; ++r)
    for (std::size_t q = 0; q < 4; ++q)
      _mm512_storeu_pd(c + r * ldc + 8 * q, acc[r][q]);
}

#elif defined(__AVX2__)

constexpr std::size_t kVecCols = 16;  // 4 rows x 4 ymm = 16 accumulators

template <bool Sub>
inline void micro_simd(std::size_t kk, const double* a, std::size_t lda,
                       const double* b, std::size_t ldb, double* c,
                       std::size_t ldc) {
  __m256d acc[kMr][4];
  for (std::size_t r = 0; r < kMr; ++r)
    for (std::size_t q = 0; q < 4; ++q)
      acc[r][q] = Sub ? _mm256_loadu_pd(c + r * ldc + 4 * q)
                      : _mm256_setzero_pd();
  for (std::size_t p = 0; p < kk; ++p) {
    __m256d bv[4];
    for (std::size_t q = 0; q < 4; ++q)
      bv[q] = _mm256_loadu_pd(b + p * ldb + 4 * q);
    for (std::size_t r = 0; r < kMr; ++r) {
      const __m256d av = _mm256_set1_pd(a[r * lda + p]);
      for (std::size_t q = 0; q < 4; ++q) {
        const __m256d prod = _mm256_mul_pd(av, bv[q]);
        acc[r][q] = Sub ? _mm256_sub_pd(acc[r][q], prod)
                        : _mm256_add_pd(acc[r][q], prod);
      }
    }
  }
  for (std::size_t r = 0; r < kMr; ++r)
    for (std::size_t q = 0; q < 4; ++q)
      _mm256_storeu_pd(c + r * ldc + 4 * q, acc[r][q]);
}

#else

constexpr std::size_t kVecCols = 0;  // no SIMD tile; generic path only

#endif

template <bool Sub>
void gemm_blocked_rows(std::size_t i0, std::size_t i1, std::size_t kk,
                       std::size_t n, const double* a, std::size_t lda,
                       const double* b, std::size_t ldb, double* c,
                       std::size_t ldc) {
  std::size_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    std::size_t j = 0;
#if defined(__AVX512F__) || defined(__AVX2__)
    for (; j + kVecCols <= n; j += kVecCols)
      micro_simd<Sub>(kk, a + i * lda, lda, b + j, ldb, c + i * ldc + j, ldc);
#endif
    for (; j + kNr <= n; j += kNr)
      micro_full<Sub>(kk, a + i * lda, lda, b + j, ldb, c + i * ldc + j, ldc);
    if (j < n)
      micro_tile<Sub>(kMr, n - j, kk, a + i * lda, lda, b + j, ldb,
                      c + i * ldc + j, ldc);
  }
  for (; i < i1; i = i1) {
    for (std::size_t j = 0; j < n; j += kNr)
      micro_tile<Sub>(i1 - i, std::min(kNr, n - j), kk, a + i * lda, lda,
                      b + j, ldb, c + i * ldc + j, ldc);
  }
}

// Row-strip driver shared by the tiled and sparse threaded paths. The
// strip size is a compile-time constant -- the decomposition depends on
// the problem shape only, never on the worker count, which is what makes
// the result bit-identical for any PERFORMA_THREADS.
template <bool Sub, bool Blocked>
void gemm_strips(std::size_t m, std::size_t kk, std::size_t n,
                 const double* a, std::size_t lda, const double* b,
                 std::size_t ldb, double* c, std::size_t ldc) {
  const std::size_t strips = (m + kRowStrip - 1) / kRowStrip;
  auto run_strip = [&](std::size_t s) {
    const std::size_t i0 = s * kRowStrip;
    const std::size_t i1 = std::min(i0 + kRowStrip, m);
    if (Blocked) {
      gemm_blocked_rows<Sub>(i0, i1, kk, n, a, lda, b, ldb, c, ldc);
    } else {
      gemm_ref_rows<Sub>(i0, i1, kk, n, a, lda, b, ldb, c, ldc);
    }
  };
  if (strips < 2 || m * kk * n < kFanOutWork) {
    for (std::size_t s = 0; s < strips; ++s) run_strip(s);
  } else {
    parallel_for(strips, run_strip);
  }
}

}  // namespace

void gemm_tiled(bool sub, std::size_t m, std::size_t kk, std::size_t n,
                const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc) {
  if (sub) {
    gemm_strips<true, true>(m, kk, n, a, lda, b, ldb, c, ldc);
  } else {
    gemm_strips<false, true>(m, kk, n, a, lda, b, ldb, c, ldc);
  }
}

void gemm_ref_threaded(bool sub, std::size_t m, std::size_t kk,
                       std::size_t n, const double* a, std::size_t lda,
                       const double* b, std::size_t ldb, double* c,
                       std::size_t ldc) {
  if (sub) {
    gemm_strips<true, false>(m, kk, n, a, lda, b, ldb, c, ldc);
  } else {
    gemm_strips<false, false>(m, kk, n, a, lda, b, ldb, c, ldc);
  }
}

// Blocked right-looking LU: factor a kPanel-wide column panel with the
// reference's rank-1 loop (restricted to panel columns, full-row swaps),
// forward-substitute L11 into the U12 block, then one gemm_sub for the
// trailing submatrix. Pivot choices and factor values match the reference
// exactly (see file header in kernels.h).
void lu_factor_tiled(std::size_t n, double* a, std::size_t lda,
                     std::size_t* piv, int* pivot_sign, double* min_pivot) {
  for (std::size_t k0 = 0; k0 < n; k0 += kPanel) {
    if (n >= 128 && obs::deadline_expired()) {
      throw DeadlineError("Lu: deadline expired during factorization");
    }
    const std::size_t pe = std::min(k0 + kPanel, n);  // panel end
    // Panel factorization (sequential: pivot decisions are a chain).
    for (std::size_t k = k0; k < pe; ++k) {
      std::size_t p = k;
      double best = std::abs(a[k * lda + k]);
      for (std::size_t i = k + 1; i < n; ++i) {
        const double cand = std::abs(a[i * lda + k]);
        if (cand > best) {
          best = cand;
          p = i;
        }
      }
      if (best == 0.0) throw NumericalError("Lu: matrix is singular");
      *min_pivot = std::min(*min_pivot, best);
      piv[k] = p;
      if (p != k) {
        for (std::size_t c = 0; c < n; ++c)
          std::swap(a[k * lda + c], a[p * lda + c]);
        *pivot_sign = -*pivot_sign;
      }
      const double inv_pivot = 1.0 / a[k * lda + k];
      for (std::size_t i = k + 1; i < n; ++i) {
        const double m = a[i * lda + k] * inv_pivot;
        a[i * lda + k] = m;
        if (m == 0.0) continue;
        for (std::size_t c = k + 1; c < pe; ++c)
          a[i * lda + c] -= m * a[k * lda + c];
      }
    }
    if (pe == n) break;
    // U12 = L11^{-1} * A12, forward substitution over trailing columns.
    // Chunked over columns so the pool can help; each chunk is disjoint.
    const std::size_t ncols = n - pe;
    const std::size_t chunks = (ncols + kColChunk - 1) / kColChunk;
    auto u12_chunk = [&](std::size_t s) {
      const std::size_t j0 = pe + s * kColChunk;
      const std::size_t j1 = std::min(j0 + kColChunk, n);
      for (std::size_t t = k0; t < pe; ++t) {
        const double* at = a + t * lda;
        for (std::size_t k2 = t + 1; k2 < pe; ++k2) {
          const double l = a[k2 * lda + t];
          if (l == 0.0) continue;
          double* ak2 = a + k2 * lda;
          for (std::size_t j = j0; j < j1; ++j) ak2[j] -= l * at[j];
        }
      }
    };
    if (chunks < 2 || (pe - k0) * (pe - k0) * ncols < kFanOutWork) {
      for (std::size_t s = 0; s < chunks; ++s) u12_chunk(s);
    } else {
      parallel_for(chunks, u12_chunk);
    }
    // A22 -= L21 * U12 (ascending-k subtraction = reference update order).
    gemm_strips</*Sub=*/true, /*Blocked=*/true>(
        n - pe, pe - k0, n - pe, a + pe * lda + k0, lda, a + k0 * lda + pe,
        lda, a + pe * lda + pe, lda);
  }
}

// Multi-RHS triangular solve, chunked over right-hand-side columns so the
// chunk (n rows x <=64 cols) stays cache-resident and rows of LU stream
// contiguously -- the reference's per-column path reads LU down columns,
// which thrashes for n in the hundreds. Per-element arithmetic order is
// identical to the reference.
void lu_solve_tiled(std::size_t n, const double* lu, std::size_t ldlu,
                    const std::size_t* piv, double* x, std::size_t nrhs,
                    std::size_t ldx) {
  const std::size_t chunks = (nrhs + kColChunk - 1) / kColChunk;
  auto solve_chunk = [&](std::size_t s) {
    const std::size_t c0 = s * kColChunk;
    const std::size_t cw = std::min(kColChunk, nrhs - c0);
    for (std::size_t k = 0; k < n; ++k) {
      const std::size_t p = piv[k];
      if (p != k) {
        double* xk = x + k * ldx + c0;
        double* xp = x + p * ldx + c0;
        for (std::size_t c = 0; c < cw; ++c) std::swap(xk[c], xp[c]);
      }
    }
    // The updated row is accumulated in a local buffer: the compiler
    // cannot prove the target row and the source rows don't alias (both
    // live in x), so without the buffer it spills the accumulators to
    // memory on every term instead of keeping them in registers.
    double buf[kColChunk];
    // Forward substitution, TRSM-style: solve a kPanel-row diagonal
    // block with the buffered scalar loop, then fan its contribution
    // into every row below through the SIMD gemm tiles. Element (i, c)
    // still receives its subtractions in ascending-k order -- earlier
    // blocks land via gemm before the within-block terms -- so the
    // result is bit-identical to the unblocked loop. (The backward pass
    // below cannot be blocked this way: batching the off-block columns
    // would subtract them before the within-block ones, reordering the
    // sum.)
    for (std::size_t b0 = 0; b0 < n; b0 += kPanel) {
      const std::size_t b1 = std::min(b0 + kPanel, n);
      for (std::size_t i = b0 + 1; i < b1; ++i) {
        const double* lui = lu + i * ldlu;
        double* xi = x + i * ldx + c0;
        for (std::size_t c = 0; c < cw; ++c) buf[c] = xi[c];
        for (std::size_t k = b0; k < i; ++k) {
          const double lik = lui[k];
          const double* xk = x + k * ldx + c0;
          for (std::size_t c = 0; c < cw; ++c) buf[c] -= lik * xk[c];
        }
        for (std::size_t c = 0; c < cw; ++c) xi[c] = buf[c];
      }
      if (b1 < n) {
        gemm_blocked_rows<true>(0, n - b1, b1 - b0, cw, lu + b1 * ldlu + b0,
                                ldlu, x + b0 * ldx + c0, ldx,
                                x + b1 * ldx + c0, ldx);
      }
    }
    for (std::size_t k = n; k-- > 0;) {
      const double* luk = lu + k * ldlu;
      double* xk = x + k * ldx + c0;
      for (std::size_t c = 0; c < cw; ++c) buf[c] = xk[c];
      for (std::size_t j = k + 1; j < n; ++j) {
        const double lkj = luk[j];
        const double* xj = x + j * ldx + c0;
        for (std::size_t c = 0; c < cw; ++c) buf[c] -= lkj * xj[c];
      }
      const double ukk = luk[k];
      for (std::size_t c = 0; c < cw; ++c) xk[c] = buf[c] / ukk;
    }
  };
  if (chunks < 2 || n * n * nrhs < kFanOutWork) {
    for (std::size_t s = 0; s < chunks; ++s) solve_chunk(s);
  } else {
    parallel_for(chunks, solve_chunk);
  }
}

// Left solve X A = B: rows are independent, so tasks are row strips. The
// reference walks LU down columns (lu(i,k) for fixed k); one upfront
// transpose makes every inner loop contiguous without touching the
// arithmetic order.
//
// Within a strip the rows are solved TOGETHER in a transposed scratch
// buffer (column i of the strip is contiguous), so the innermost loop
// runs across rows. A single row's substitution is a serial reduction
// the vectorizer cannot touch -- each `acc -= z[i]*u(i,k)` depends on
// the last -- but across rows the chains are independent, so a
// 64-row strip gives the FP units eight vector accumulators in flight.
// Each row still performs the reference's exact operation sequence.
void lu_solve_left_tiled(std::size_t n, const double* lu, std::size_t ldlu,
                         const std::size_t* piv, double* x,
                         std::size_t nrows, std::size_t ldx) {
  std::vector<double> lut(n * n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) lut[k * n + i] = lu[i * ldlu + k];
  constexpr std::size_t kRows = 64;
  if (nrows < kRows / 4) {
    // Narrow batches: the strip buffer's fixed-width arithmetic would
    // mostly compute padding lanes; solve row by row against lut.
    for (std::size_t r = 0; r < nrows; ++r) {
      double* z = x + r * ldx;
      for (std::size_t k = 0; k < n; ++k) {
        const double* ltk = lut.data() + k * n;
        double acc = z[k];
        for (std::size_t i = 0; i < k; ++i) acc -= z[i] * ltk[i];
        z[k] = acc / ltk[k];
      }
      for (std::size_t k = n; k-- > 0;) {
        const double* ltk = lut.data() + k * n;
        double acc = z[k];
        for (std::size_t i = k + 1; i < n; ++i) acc -= z[i] * ltk[i];
        z[k] = acc;
      }
      for (std::size_t k = n; k-- > 0;) std::swap(z[k], z[piv[k]]);
    }
    return;
  }
  const std::size_t strips = (nrows + kRows - 1) / kRows;
  auto solve_strip = [&](std::size_t s) {
    const std::size_t r0 = s * kRows;
    const std::size_t w = std::min(kRows, nrows - r0);
    // Gather the strip transposed; zero-filled padding lanes keep the
    // fixed-width loops finite (0 stays 0 through every substitution).
    std::vector<double> zbuf(n * kRows);
    for (std::size_t r = 0; r < w; ++r) {
      const double* z = x + (r0 + r) * ldx;
      for (std::size_t i = 0; i < n; ++i) zbuf[i * kRows + r] = z[i];
    }
    // Accumulate the active column in a local buffer (see lu_solve_tiled:
    // without it the compiler can't disprove aliasing between zk and zi
    // and spills the accumulators on every term).
    double acc[kRows];
    // Forward pass z U = b, TRSM-style over kPanel-column blocks of U:
    // solve the diagonal block with the buffered loop, then fan it into
    // the columns to the right through the SIMD gemm tiles (in zbuf the
    // batch dimension is contiguous, so the update is a plain row-major
    // gemm against lut). Ascending-i term order per element is
    // preserved, so the result is bit-identical to the unblocked loop.
    for (std::size_t b0 = 0; b0 < n; b0 += kPanel) {
      const std::size_t b1 = std::min(b0 + kPanel, n);
      for (std::size_t k = b0; k < b1; ++k) {
        const double* ltk = lut.data() + k * n;
        double* zk = zbuf.data() + k * kRows;
        for (std::size_t r = 0; r < kRows; ++r) acc[r] = zk[r];
        for (std::size_t i = b0; i < k; ++i) {
          const double uik = ltk[i];
          const double* zi = zbuf.data() + i * kRows;
          for (std::size_t r = 0; r < kRows; ++r) acc[r] -= zi[r] * uik;
        }
        const double ukk = ltk[k];
        for (std::size_t r = 0; r < kRows; ++r) zk[r] = acc[r] / ukk;
      }
      if (b1 < n) {
        gemm_blocked_rows<true>(0, n - b1, b1 - b0, kRows,
                                lut.data() + b1 * n + b0, n,
                                zbuf.data() + b0 * kRows, kRows,
                                zbuf.data() + b1 * kRows, kRows);
      }
    }
    for (std::size_t k = n; k-- > 0;) {
      const double* ltk = lut.data() + k * n;
      double* zk = zbuf.data() + k * kRows;
      for (std::size_t r = 0; r < kRows; ++r) acc[r] = zk[r];
      for (std::size_t i = k + 1; i < n; ++i) {
        const double lik = ltk[i];
        const double* zi = zbuf.data() + i * kRows;
        for (std::size_t r = 0; r < kRows; ++r) acc[r] -= zi[r] * lik;
      }
      for (std::size_t r = 0; r < kRows; ++r) zk[r] = acc[r];
    }
    for (std::size_t r = 0; r < w; ++r) {
      double* z = x + (r0 + r) * ldx;
      for (std::size_t i = 0; i < n; ++i) z[i] = zbuf[i * kRows + r];
      for (std::size_t k = n; k-- > 0;) std::swap(z[k], z[piv[k]]);
    }
  };
  if (strips < 2 || n * n * nrows < kFanOutWork) {
    for (std::size_t s = 0; s < strips; ++s) solve_strip(s);
  } else {
    parallel_for(strips, solve_strip);
  }
}

}  // namespace performa::linalg::detail
