// Shared-memory thread pool for the blocked linear-algebra kernels.
//
// Design goals, in order:
//
//   1. *Determinism.* parallel_for(n, f) runs tasks f(0..n-1) whose outputs
//      must be disjoint (each task owns its slice of the result). Because
//      the task decomposition is fixed by the problem size -- never by the
//      worker count -- and no task ever combines another task's partial
//      result, every computation is bit-identical for any PERFORMA_THREADS
//      value, including 1 (fully inline). Reductions that cross task
//      boundaries are forbidden in pool tasks; kernels that need one must
//      reduce the per-task partials on the calling thread in task-index
//      order (see DESIGN.md section 12, "determinism contract").
//   2. *Zero cost when idle or small.* Workers are spawned lazily on the
//      first parallel_for big enough to benefit; a 3x3 product never wakes
//      a thread. With one configured thread everything runs inline.
//   3. *Fork safety.* The experiment runner and the CI drills fork worker
//      processes. Threads do not survive fork(2), so a child that inherits
//      pool state would wait forever on workers that no longer exist. The
//      pool detects the pid change and swaps in a fresh state object (the
//      old one is intentionally leaked: its mutex may have been mid-flight
//      in the parent, so destroying it in the child would be UB); the
//      child then spawns its own workers on demand.
//   4. *Clean exit.* Workers are joined from a static destructor (and by
//      pool_shutdown()), so a TSan build reports no leaked threads after
//      perfctl/performad exit.
//
// PERFORMA_THREADS sets the worker count (default: hardware threads);
// set_pool_threads() overrides it at runtime (tests, --threads flags).
#pragma once

#include <cstddef>
#include <type_traits>

namespace performa::linalg {

/// Configured worker count (>= 1). 1 means all work runs inline on the
/// calling thread. Reads PERFORMA_THREADS (falling back to
/// std::thread::hardware_concurrency) the first time the pool is touched
/// in a process.
unsigned pool_threads() noexcept;

/// Override the worker count: joins existing workers and respawns lazily
/// at the new size on the next large-enough parallel_for. n == 0 restores
/// the environment/hardware default.
void set_pool_threads(unsigned n);

/// Join and discard all pool workers (idempotent). The configured size is
/// kept, so the next parallel_for respawns; call right before process exit
/// (perfctl does) to guarantee no thread outlives main under TSan.
void pool_shutdown();

/// Number of OS threads the pool currently has running -- 0 after
/// pool_shutdown() and before the first qualifying parallel_for.
std::size_t pool_live_workers() noexcept;

namespace detail {
void parallel_for_impl(std::size_t n_tasks, void (*fn)(void*, std::size_t),
                       void* ctx, std::size_t min_tasks_to_fan_out);
}

/// Run f(0), f(1), ..., f(n_tasks-1), possibly concurrently. Tasks MUST
/// write disjoint outputs and MUST NOT throw (kernels validate before
/// fanning out). Runs inline when the pool has one thread, when n_tasks
/// is below `min_tasks_to_fan_out`, or in a forked child whose parent
/// created the pool.
template <typename F>
void parallel_for(std::size_t n_tasks, F&& f,
                  std::size_t min_tasks_to_fan_out = 2) {
  using Fn = std::remove_reference_t<F>;
  detail::parallel_for_impl(
      n_tasks, [](void* ctx, std::size_t i) { (*static_cast<Fn*>(ctx))(i); },
      &f, min_tasks_to_fan_out);
}

}  // namespace performa::linalg
