// Dense row-major matrix and vector utilities.
//
// This is the zero-dependency numeric substrate of performa. Matrix orders
// in the DSN'07 model are at most a few thousand (lumped MMPP phase spaces),
// so straightforward dense O(n^3) kernels are adequate and keep the code
// auditable.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <vector>

#include "linalg/errors.h"

namespace performa::linalg {

/// Column vector of doubles. We use std::vector directly (Core Guidelines
/// SL.con.2) and provide the linear-algebra operations as free functions.
using Vector = std::vector<double>;

/// Dense row-major matrix of doubles with value semantics.
///
/// Invariants: data().size() == rows()*cols(); both dimensions may be zero
/// only together (default-constructed empty matrix).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, all entries set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construct from nested initializer lists: Matrix{{1,2},{3,4}}.
  /// Throws InvalidArgument if the rows are ragged.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }
  bool is_square() const noexcept { return rows_ == cols_; }

  /// Unchecked element access (hot paths).
  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access; throws InvalidArgument when out of range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Contiguous row-major storage.
  const std::vector<double>& data() const noexcept { return data_; }
  std::vector<double>& data() noexcept { return data_; }

  /// Row `r` as a copy.
  Vector row(std::size_t r) const;
  /// Column `c` as a copy.
  Vector col(std::size_t c) const;
  void set_row(std::size_t r, const Vector& v);
  void set_col(std::size_t c, const Vector& v);

  Matrix transposed() const;

  // Element-wise compound arithmetic.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double s) noexcept;
  Matrix& operator/=(double s);

  /// n x n identity.
  static Matrix identity(std::size_t n);
  /// Square matrix with `d` on the diagonal.
  static Matrix diag(const Vector& d);
  /// rows x cols of zeros.
  static Matrix zeros(std::size_t rows, std::size_t cols);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// --- arithmetic -----------------------------------------------------------

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator*(Matrix m, double s);
Matrix operator*(double s, Matrix m);
Matrix operator-(Matrix m);

/// Dense matrix product (ikj loop order for cache friendliness).
Matrix operator*(const Matrix& a, const Matrix& b);

/// Matrix * column-vector.
Vector operator*(const Matrix& m, const Vector& v);

/// Row-vector * matrix (the natural operation on stationary vectors).
Vector operator*(const Vector& v, const Matrix& m);

// --- vector helpers -------------------------------------------------------

/// Inner product; throws on length mismatch.
double dot(const Vector& a, const Vector& b);

/// Sum of entries (v . ones).
double sum(const Vector& v) noexcept;

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector v, double s);
Vector operator*(double s, Vector v);

/// Column vector of n ones (the LAQT epsilon vector).
Vector ones(std::size_t n);

// --- norms ----------------------------------------------------------------

/// Max absolute row sum.
double norm_inf(const Matrix& m) noexcept;
/// Max absolute column sum.
double norm_1(const Matrix& m) noexcept;
/// Frobenius norm.
double norm_fro(const Matrix& m) noexcept;
/// Max |v_i|.
double norm_inf(const Vector& v) noexcept;
/// Sum |v_i|.
double norm_1(const Vector& v) noexcept;

/// max_ij |a_ij - b_ij|; matrices must have equal shape.
double max_abs_diff(const Matrix& a, const Matrix& b);
double max_abs_diff(const Vector& a, const Vector& b);

// --- non-finite sentinels -------------------------------------------------

/// True iff every entry is finite (no NaN, no +/-inf).
bool is_finite(const Matrix& m) noexcept;
bool is_finite(const Vector& v) noexcept;

/// Stage-boundary sentinel: throws NonFiniteError naming `context` when a
/// NaN/inf is present. Call wherever a value produced by one subsystem is
/// handed to another, so corruption is caught at the hand-off instead of
/// surfacing as a mysterious result many layers later.
void check_finite(const Matrix& m, const char* context);
void check_finite(const Vector& v, const char* context);
void check_finite(double x, const char* context);

/// Pretty-printer used in error paths and debugging.
std::ostream& operator<<(std::ostream& os, const Matrix& m);

}  // namespace performa::linalg
