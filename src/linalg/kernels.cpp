#include "linalg/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <vector>

#include "linalg/errors.h"
#include "linalg/kernels_detail.h"
#include "obs/deadline.h"
#include "obs/metrics.h"

namespace performa::linalg {

namespace {

std::atomic<int> g_backend{-1};  // -1 = PERFORMA_KERNEL_BACKEND unread

KernelBackend backend_from_env() noexcept {
  if (const char* env = std::getenv("PERFORMA_KERNEL_BACKEND");
      env != nullptr && std::strcmp(env, "reference") == 0) {
    return KernelBackend::kReference;
  }
  return KernelBackend::kBlocked;
}

// ---------------------------------------------------------------------------
// Reference kernels: the original scratch loops, the executable spec.
// This TU is compiled with the project's default flags -- the reference
// backend IS the pre-refactor code, instruction for instruction; the tiled
// implementations live in kernels_tiled.cpp behind detail:: (see
// kernels_detail.h for the split's rationale).
// ---------------------------------------------------------------------------

// The original Lu constructor loop: rank-1 right-looking elimination with
// immediate full-row pivot swaps.
void lu_factor_ref(std::size_t n, double* a, std::size_t lda,
                   std::size_t* piv, int* pivot_sign, double* min_pivot) {
  for (std::size_t k = 0; k < n; ++k) {
    if (n >= 128 && (k & 63u) == 0 && obs::deadline_expired()) {
      throw DeadlineError("Lu: deadline expired during factorization");
    }
    std::size_t p = k;
    double best = std::abs(a[k * lda + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = std::abs(a[i * lda + k]);
      if (cand > best) {
        best = cand;
        p = i;
      }
    }
    if (best == 0.0) throw NumericalError("Lu: matrix is singular");
    *min_pivot = std::min(*min_pivot, best);
    piv[k] = p;
    if (p != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(a[k * lda + c], a[p * lda + c]);
      *pivot_sign = -*pivot_sign;
    }
    const double inv_pivot = 1.0 / a[k * lda + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a[i * lda + k] * inv_pivot;
      a[i * lda + k] = m;
      if (m == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c)
        a[i * lda + c] -= m * a[k * lda + c];
    }
  }
}

// The original per-column Lu::solve: gather a column, permute, forward- and
// back-substitute, scatter it back.
void lu_solve_ref(std::size_t n, const double* lu, std::size_t ldlu,
                  const std::size_t* piv, double* x, std::size_t nrhs,
                  std::size_t ldx) {
  std::vector<double> col(n);
  for (std::size_t c = 0; c < nrhs; ++c) {
    for (std::size_t i = 0; i < n; ++i) col[i] = x[i * ldx + c];
    for (std::size_t k = 0; k < n; ++k) std::swap(col[k], col[piv[k]]);
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = k + 1; i < n; ++i) col[i] -= lu[i * ldlu + k] * col[k];
    }
    for (std::size_t k = n; k-- > 0;) {
      for (std::size_t j = k + 1; j < n; ++j) col[k] -= lu[k * ldlu + j] * col[j];
      col[k] /= lu[k * ldlu + k];
    }
    for (std::size_t i = 0; i < n; ++i) x[i * ldx + c] = col[i];
  }
}

// The original per-row Lu::solve_left: z U = b, y L = z, x = y P.
void lu_solve_left_ref(std::size_t n, const double* lu, std::size_t ldlu,
                       const std::size_t* piv, double* x, std::size_t nrows,
                       std::size_t ldx) {
  for (std::size_t r = 0; r < nrows; ++r) {
    double* z = x + r * ldx;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < k; ++i) z[k] -= z[i] * lu[i * ldlu + k];
      z[k] /= lu[k * ldlu + k];
    }
    for (std::size_t k = n; k-- > 0;) {
      for (std::size_t i = k + 1; i < n; ++i) z[k] -= z[i] * lu[i * ldlu + k];
    }
    for (std::size_t k = n; k-- > 0;) std::swap(z[k], z[piv[k]]);
  }
}

// Density probe: products against (block-)diagonal operands dominate the
// QBD inner loops, where the reference's zero-skip loop is O(n^2) while a
// dense tile sweep would be O(n^3). Bails out of the scan as soon as the
// operand is provably dense enough for tiles to win.
bool mostly_zero(const double* a, std::size_t m, std::size_t kk,
                 std::size_t lda) {
  const std::size_t total = m * kk;
  const std::size_t cutoff = total / 8;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a + i * lda;
    for (std::size_t p = 0; p < kk; ++p) nnz += ai[p] != 0.0;
    if (nnz > cutoff) return false;
  }
  return nnz <= cutoff;
}

}  // namespace

KernelBackend kernel_backend() noexcept {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    b = static_cast<int>(backend_from_env());
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<KernelBackend>(b);
}

void set_kernel_backend(KernelBackend backend) noexcept {
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

const char* to_string(KernelBackend backend) noexcept {
  switch (backend) {
    case KernelBackend::kReference:
      return "reference";
    case KernelBackend::kBlocked:
      return "blocked";
  }
  return "unknown";
}

namespace kern {

void gemm(std::size_t m, std::size_t k, std::size_t n, const double* a,
          std::size_t lda, const double* b, std::size_t ldb, double* c,
          std::size_t ldc) {
  static obs::Counter& calls = obs::counter("linalg.gemm.calls");
  static obs::Counter& flops = obs::counter("linalg.gemm.flops");
  calls.add();
  flops.add(2 * m * k * n);
  if (kernel_backend() == KernelBackend::kReference) {
    detail::gemm_ref_rows<false>(0, m, k, n, a, lda, b, ldb, c, ldc);
    return;
  }
  if (m * k >= 64 && mostly_zero(a, m, k, lda)) {
    // Sparse operand: the skip loop beats dense tiles; still threaded.
    detail::gemm_ref_threaded(false, m, k, n, a, lda, b, ldb, c, ldc);
    return;
  }
  detail::gemm_tiled(false, m, k, n, a, lda, b, ldb, c, ldc);
}

void gemm_sub(std::size_t m, std::size_t k, std::size_t n, const double* a,
              std::size_t lda, const double* b, std::size_t ldb, double* c,
              std::size_t ldc) {
  if (kernel_backend() == KernelBackend::kReference) {
    detail::gemm_ref_rows<true>(0, m, k, n, a, lda, b, ldb, c, ldc);
    return;
  }
  detail::gemm_tiled(true, m, k, n, a, lda, b, ldb, c, ldc);
}

void lu_factor(std::size_t n, double* a, std::size_t lda, std::size_t* piv,
               int* pivot_sign, double* min_pivot) {
  if (kernel_backend() == KernelBackend::kReference ||
      n < 2 * detail::kPanel) {
    lu_factor_ref(n, a, lda, piv, pivot_sign, min_pivot);
    return;
  }
  detail::lu_factor_tiled(n, a, lda, piv, pivot_sign, min_pivot);
}

void lu_solve(std::size_t n, const double* lu, std::size_t ldlu,
              const std::size_t* piv, double* x, std::size_t nrhs,
              std::size_t ldx) {
  if (kernel_backend() == KernelBackend::kReference) {
    lu_solve_ref(n, lu, ldlu, piv, x, nrhs, ldx);
    return;
  }
  detail::lu_solve_tiled(n, lu, ldlu, piv, x, nrhs, ldx);
}

void lu_solve_left(std::size_t n, const double* lu, std::size_t ldlu,
                   const std::size_t* piv, double* x, std::size_t nrows,
                   std::size_t ldx) {
  if (kernel_backend() == KernelBackend::kReference) {
    lu_solve_left_ref(n, lu, ldlu, piv, x, nrows, ldx);
    return;
  }
  detail::lu_solve_left_tiled(n, lu, ldlu, piv, x, nrows, ldx);
}

}  // namespace kern

}  // namespace performa::linalg
