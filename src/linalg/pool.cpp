#include "linalg/pool.h"

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace performa::linalg {

namespace {

unsigned env_default_threads() {
  if (const char* env = std::getenv("PERFORMA_THREADS");
      env != nullptr && *env != '\0') {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v >= 1 && v <= 4096) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// All mutable pool state lives behind one pointer so a forked child can
// atomically swap in a fresh object without touching the parent's (whose
// mutex may have been held mid-parallel_for at fork time).
struct PoolState {
  explicit PoolState(unsigned n) : configured(n), pid(::getpid()) {}

  const unsigned configured;  // target worker count (>= 1)
  const pid_t pid;            // process that owns these threads

  std::mutex mu;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  bool stopping = false;

  // Current job, published under mu; workers claim task indices with a
  // lock-free fetch_add so the queue costs one atomic per task.
  std::uint64_t generation = 0;
  void (*fn)(void*, std::size_t) = nullptr;
  void* ctx = nullptr;
  std::size_t n_tasks = 0;
  std::atomic<std::size_t> next{0};
  std::size_t tasks_done = 0;
  // Workers currently outside mu in their claim window (between reading
  // the job fields and re-locking). run() must quiesce this to zero
  // before resetting `next`: a worker that woke late for a finished job
  // may still be about to fetch_add, and resetting the counter under it
  // would hand it a claim on the *new* job with the *old* closure -- a
  // stale callback into a dead stack frame plus a silently lost task
  // (caught by the TSan CI leg).
  std::size_t active = 0;

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock lock(mu);
    for (;;) {
      work_cv.wait(lock, [&] { return stopping || generation != seen; });
      if (stopping) return;
      seen = generation;
      auto* job_fn = fn;
      void* job_ctx = ctx;
      const std::size_t total = n_tasks;
      ++active;
      lock.unlock();
      std::size_t ran = 0;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        job_fn(job_ctx, i);
        ++ran;
      }
      lock.lock();
      tasks_done += ran;
      --active;
      done_cv.notify_all();
    }
  }

  void spawn_workers() {
    // configured - 1 helpers: the calling thread always participates, so
    // `configured` threads execute tasks in total.
    workers.reserve(configured - 1);
    for (unsigned i = 0; i + 1 < configured; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
    static obs::Gauge& threads = obs::gauge("linalg.pool.threads");
    threads.set(static_cast<double>(workers.size()));
  }

  void run(std::size_t total, void (*f)(void*, std::size_t), void* c) {
    std::unique_lock lock(mu);
    // Drain any straggler still in the previous job's claim window; see
    // the comment on `active`. Normally zero already -- the wait only
    // blocks when a worker woke late for an already-finished job.
    done_cv.wait(lock, [&] { return active == 0; });
    if (workers.empty()) spawn_workers();
    fn = f;
    ctx = c;
    n_tasks = total;
    tasks_done = 0;
    next.store(0, std::memory_order_relaxed);
    ++generation;
    work_cv.notify_all();
    lock.unlock();

    // The calling thread works too -- a pool of 1 degenerates to inline.
    std::size_t ran = 0;
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      f(c, i);
      ++ran;
    }

    lock.lock();
    tasks_done += ran;
    done_cv.wait(lock, [&] { return tasks_done == n_tasks; });
  }

  void join_all() {
    {
      std::lock_guard lock(mu);
      stopping = true;
      work_cv.notify_all();
    }
    for (std::thread& t : workers) t.join();
    workers.clear();
    stopping = false;
    static obs::Gauge& threads = obs::gauge("linalg.pool.threads");
    threads.set(0.0);
  }
};

// 0 = "derive from the environment on next use".
std::atomic<unsigned> g_override{0};
std::atomic<PoolState*> g_state{nullptr};
std::mutex g_state_mu;

// Joins workers when static destructors run, so a clean process exit
// leaves no thread behind (the TSan CI leg asserts exactly this).
struct PoolAtExit {
  ~PoolAtExit() { pool_shutdown(); }
} g_at_exit;

// Returns the live state for this process, creating or (after fork)
// replacing it. The returned pointer stays valid for the process
// lifetime: states are only ever leaked, never deleted, so a racing
// reader can never observe a destroyed mutex.
PoolState* state() {
  PoolState* s = g_state.load(std::memory_order_acquire);
  if (s != nullptr && s->pid == ::getpid()) return s;
  std::lock_guard lock(g_state_mu);
  s = g_state.load(std::memory_order_acquire);
  if (s != nullptr && s->pid == ::getpid()) return s;
  // First use in this process, or first use after fork(2). The parent's
  // threads did not survive the fork and its mutex state is unknowable,
  // so the old object is abandoned (leaked once per fork, bounded and
  // sanctioned: freeing it could destroy a locked mutex).
  const unsigned override = g_override.load(std::memory_order_relaxed);
  s = new PoolState(override != 0 ? override : env_default_threads());
  g_state.store(s, std::memory_order_release);
  return s;
}

}  // namespace

unsigned pool_threads() noexcept { return state()->configured; }

void set_pool_threads(unsigned n) {
  std::unique_lock lock(g_state_mu);
  g_override.store(n, std::memory_order_relaxed);
  PoolState* s = g_state.load(std::memory_order_acquire);
  g_state.store(nullptr, std::memory_order_release);
  lock.unlock();
  // Join outside the creation lock; the state object itself is leaked by
  // design (see state()).
  if (s != nullptr && s->pid == ::getpid()) s->join_all();
}

void pool_shutdown() {
  PoolState* s = g_state.load(std::memory_order_acquire);
  if (s != nullptr && s->pid == ::getpid()) s->join_all();
}

std::size_t pool_live_workers() noexcept {
  PoolState* s = g_state.load(std::memory_order_acquire);
  if (s == nullptr || s->pid != ::getpid()) return 0;
  std::lock_guard lock(s->mu);
  return s->workers.size();
}

namespace detail {

void parallel_for_impl(std::size_t n_tasks, void (*fn)(void*, std::size_t),
                       void* ctx, std::size_t min_tasks_to_fan_out) {
  if (n_tasks == 0) return;
  PoolState* s = state();
  if (s->configured <= 1 || n_tasks < min_tasks_to_fan_out) {
    for (std::size_t i = 0; i < n_tasks; ++i) fn(ctx, i);
    return;
  }
  static obs::Counter& fanouts = obs::counter("linalg.pool.fanouts");
  static obs::Counter& tasks = obs::counter("linalg.pool.tasks");
  fanouts.add();
  tasks.add(n_tasks);
  s->run(n_tasks, fn, ctx);
}

}  // namespace detail

}  // namespace performa::linalg
