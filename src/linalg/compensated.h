// Neumaier compensated summation.
//
// The trust layer's probability-mass checks subtract quantities that agree
// to ~15 digits; a naive left-to-right sum loses exactly the digits the
// check is trying to measure. Neumaier's variant of Kahan summation keeps
// a running compensation term that also survives the case |x| > |sum|
// (which plain Kahan drops), making the accumulated error independent of
// the number of terms: the result is the correctly rounded sum plus O(eps)
// instead of O(n eps).
//
// The class is templated so verification floors can be evaluated in long
// double (one extra order of headroom on x86-64) while the simulator's
// streaming accumulators stay in double.
#pragma once

#include <cstddef>

namespace performa::linalg {

template <typename T = double>
class CompensatedSum {
 public:
  CompensatedSum() = default;
  explicit CompensatedSum(T initial) : sum_(initial) {}

  void add(T x) noexcept {
    const T t = sum_ + x;
    if ((sum_ < 0 ? -sum_ : sum_) >= (x < 0 ? -x : x)) {
      comp_ += (sum_ - t) + x;  // low-order digits of x were lost
    } else {
      comp_ += (x - t) + sum_;  // low-order digits of sum_ were lost
    }
    sum_ = t;
  }

  CompensatedSum& operator+=(T x) noexcept {
    add(x);
    return *this;
  }

  /// The compensated total. Cheap enough to call per-read; the
  /// compensation term is folded in at the end (Neumaier), not per-add
  /// (Kahan), which is what preserves terms larger than the running sum.
  T value() const noexcept { return sum_ + comp_; }

  void reset(T initial = T{}) noexcept {
    sum_ = initial;
    comp_ = T{};
  }

 private:
  T sum_{};
  T comp_{};
};

/// Compensated sum of a range of doubles.
inline double sum_compensated(const double* x, std::size_t n) noexcept {
  CompensatedSum<double> acc;
  for (std::size_t i = 0; i < n; ++i) acc.add(x[i]);
  return acc.value();
}

/// Compensated inner product: each product is formed in double (one
/// rounding) and accumulated without further error growth.
inline double dot_compensated(const double* a, const double* b,
                              std::size_t n) noexcept {
  CompensatedSum<double> acc;
  for (std::size_t i = 0; i < n; ++i) acc.add(a[i] * b[i]);
  return acc.value();
}

}  // namespace performa::linalg
