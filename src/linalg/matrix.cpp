#include "linalg/matrix.h"

#include <cmath>
#include <ostream>
#include <string>

#include "linalg/compensated.h"
#include "linalg/kernels.h"

namespace performa::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  PERFORMA_EXPECTS((rows == 0) == (cols == 0),
                   "Matrix: dimensions must be both zero or both nonzero");
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ == 0 ? 0 : init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    PERFORMA_EXPECTS(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  PERFORMA_EXPECTS(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  PERFORMA_EXPECTS(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  PERFORMA_EXPECTS(r < rows_, "Matrix::row: index out of range");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  PERFORMA_EXPECTS(c < cols_, "Matrix::col: index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
  PERFORMA_EXPECTS(r < rows_ && v.size() == cols_,
                   "Matrix::set_row: shape mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

void Matrix::set_col(std::size_t c, const Vector& v) {
  PERFORMA_EXPECTS(c < cols_ && v.size() == rows_,
                   "Matrix::set_col: shape mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = v[r];
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  PERFORMA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                   "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  PERFORMA_EXPECTS(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                   "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix& Matrix::operator/=(double s) {
  PERFORMA_EXPECTS(s != 0.0, "Matrix::operator/=: division by zero");
  for (double& x : data_) x /= s;
  return *this;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diag(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) {
  return Matrix(rows, cols, 0.0);
}

Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
Matrix operator*(Matrix m, double s) { return m *= s; }
Matrix operator*(double s, Matrix m) { return m *= s; }

Matrix operator-(Matrix m) {
  for (double& x : m.data()) x = -x;
  return m;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  PERFORMA_EXPECTS(a.cols() == b.rows(), "Matrix product: shape mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  kern::gemm(a.rows(), a.cols(), b.cols(), a.data().data(), a.cols(),
             b.data().data(), b.cols(), c.data().data(), c.cols());
  return c;
}

Vector operator*(const Matrix& m, const Vector& v) {
  PERFORMA_EXPECTS(m.cols() == v.size(), "Matrix*Vector: shape mismatch");
  Vector out(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) acc += m(i, j) * v[j];
    out[i] = acc;
  }
  return out;
}

Vector operator*(const Vector& v, const Matrix& m) {
  PERFORMA_EXPECTS(v.size() == m.rows(), "Vector*Matrix: shape mismatch");
  Vector out(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    for (std::size_t j = 0; j < m.cols(); ++j) out[j] += vi * m(i, j);
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  PERFORMA_EXPECTS(a.size() == b.size(), "dot: length mismatch");
  // Compensated (Neumaier) accumulation: dot products against tail-closure
  // vectors mix magnitudes across many orders near blow-up points, where a
  // naive sum loses exactly the digits the trust checks measure.
  return dot_compensated(a.data(), b.data(), a.size());
}

double sum(const Vector& v) noexcept {
  return sum_compensated(v.data(), v.size());
}

void axpy(double alpha, const Vector& x, Vector& y) {
  PERFORMA_EXPECTS(x.size() == y.size(), "axpy: length mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector operator+(Vector a, const Vector& b) {
  PERFORMA_EXPECTS(a.size() == b.size(), "Vector+: length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  PERFORMA_EXPECTS(a.size() == b.size(), "Vector-: length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] -= b[i];
  return a;
}

Vector operator*(Vector v, double s) {
  for (double& x : v) x *= s;
  return v;
}

Vector operator*(double s, Vector v) { return std::move(v) * s; }

Vector ones(std::size_t n) { return Vector(n, 1.0); }

double norm_inf(const Matrix& m) noexcept {
  double best = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < m.cols(); ++c) row_sum += std::abs(m(r, c));
    best = std::max(best, row_sum);
  }
  return best;
}

double norm_1(const Matrix& m) noexcept {
  double best = 0.0;
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double col_sum = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) col_sum += std::abs(m(r, c));
    best = std::max(best, col_sum);
  }
  return best;
}

double norm_fro(const Matrix& m) noexcept {
  double acc = 0.0;
  for (double x : m.data()) acc += x * x;
  return std::sqrt(acc);
}

double norm_inf(const Vector& v) noexcept {
  double best = 0.0;
  for (double x : v) best = std::max(best, std::abs(x));
  return best;
}

double norm_1(const Vector& v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  PERFORMA_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols(),
                   "max_abs_diff: shape mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i)
    best = std::max(best, std::abs(a.data()[i] - b.data()[i]));
  return best;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  PERFORMA_EXPECTS(a.size() == b.size(), "max_abs_diff: length mismatch");
  double best = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    best = std::max(best, std::abs(a[i] - b[i]));
  return best;
}

bool is_finite(const Matrix& m) noexcept {
  for (double x : m.data()) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool is_finite(const Vector& v) noexcept {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

void check_finite(const Matrix& m, const char* context) {
  if (!is_finite(m)) {
    throw NonFiniteError(std::string(context) +
                         ": matrix contains a NaN or infinity");
  }
}

void check_finite(const Vector& v, const char* context) {
  if (!is_finite(v)) {
    throw NonFiniteError(std::string(context) +
                         ": vector contains a NaN or infinity");
  }
}

void check_finite(double x, const char* context) {
  if (!std::isfinite(x)) {
    throw NonFiniteError(std::string(context) + ": value is NaN or infinite");
  }
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    os << (r == 0 ? "[" : " ");
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << m(r, c) << (c + 1 < m.cols() ? " " : "");
    }
    os << (r + 1 < m.rows() ? "\n" : "]");
  }
  return os;
}

}  // namespace performa::linalg
