// Internal seam between the two kernel translation units. Not installed;
// include only from src/linalg.
//
//   kernels.cpp       -- backend state, dispatch, and the reference loops,
//                        compiled with the project's default flags exactly
//                        like the original scratch code was.
//   kernels_tiled.cpp -- the blocked/tiled/threaded implementations,
//                        compiled with the widest SIMD the build host
//                        offers (-march=native) but with FP contraction
//                        OFF: every element still performs the same IEEE
//                        multiply and add sequence in the same order, so
//                        wider vectors change throughput, never bits.
#pragma once

#include <cstddef>

namespace performa::linalg::detail {

/// LU panel width; lu_factor dispatches to the reference loop below
/// 2 * kPanel, where panel overhead exceeds the blocking win.
constexpr std::size_t kPanel = 64;

/// The i-k-j loop from the original operator*, with the sparsity skip that
/// makes products against (block-)diagonal generators O(n^2). Sub selects
/// C -= A*B; either way element (i,j) accumulates terms in ascending-k
/// order. Defined inline so both TUs instantiate identical arithmetic.
template <bool Sub>
inline void gemm_ref_rows(std::size_t i0, std::size_t i1, std::size_t kk,
                          std::size_t n, const double* a, std::size_t lda,
                          const double* b, std::size_t ldb, double* c,
                          std::size_t ldc) {
  for (std::size_t i = i0; i < i1; ++i) {
    double* ci = c + i * ldc;
    if (!Sub) {
      for (std::size_t j = 0; j < n; ++j) ci[j] = 0.0;
    }
    const double* ai = a + i * lda;
    for (std::size_t p = 0; p < kk; ++p) {
      const double aip = ai[p];
      if (aip == 0.0) continue;  // generators are sparse in practice
      const double* bp = b + p * ldb;
      if (Sub) {
        for (std::size_t j = 0; j < n; ++j) ci[j] -= aip * bp[j];
      } else {
        for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

// Tiled + threaded entry points (kernels_tiled.cpp). Contracts match the
// kern:: functions they implement; `sub` selects C -= A*B.
void gemm_tiled(bool sub, std::size_t m, std::size_t kk, std::size_t n,
                const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc);

/// Zero-skip row loop fanned out over the pool: the blocked backend's
/// sparse-operand fast path (bit-identical to the reference loop).
void gemm_ref_threaded(bool sub, std::size_t m, std::size_t kk,
                       std::size_t n, const double* a, std::size_t lda,
                       const double* b, std::size_t ldb, double* c,
                       std::size_t ldc);

void lu_factor_tiled(std::size_t n, double* a, std::size_t lda,
                     std::size_t* piv, int* pivot_sign, double* min_pivot);

void lu_solve_tiled(std::size_t n, const double* lu, std::size_t ldlu,
                    const std::size_t* piv, double* x, std::size_t nrhs,
                    std::size_t ldx);

void lu_solve_left_tiled(std::size_t n, const double* lu, std::size_t ldlu,
                         const std::size_t* piv, double* x,
                         std::size_t nrows, std::size_t ldx);

}  // namespace performa::linalg::detail
