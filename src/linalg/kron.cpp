#include "linalg/kron.h"

namespace performa::linalg {

Matrix kron(const Matrix& a, const Matrix& b) {
  PERFORMA_EXPECTS(!a.empty() && !b.empty(), "kron: empty operand");
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols(), 0.0);
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const double aij = a(ia, ja);
      if (aij == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          out(ia * b.rows() + ib, ja * b.cols() + jb) = aij * b(ib, jb);
        }
      }
    }
  }
  return out;
}

Matrix kron_sum(const Matrix& a, const Matrix& b) {
  PERFORMA_EXPECTS(a.is_square() && b.is_square(),
                   "kron_sum: operands must be square");
  return kron(a, Matrix::identity(b.rows())) +
         kron(Matrix::identity(a.rows()), b);
}

Matrix kron_power(const Matrix& a, std::size_t n) {
  PERFORMA_EXPECTS(n >= 1, "kron_power: n must be >= 1");
  Matrix out = a;
  for (std::size_t i = 1; i < n; ++i) out = kron(out, a);
  return out;
}

Matrix kron_sum_power(const Matrix& a, std::size_t n) {
  PERFORMA_EXPECTS(n >= 1, "kron_sum_power: n must be >= 1");
  Matrix out = a;
  for (std::size_t i = 1; i < n; ++i) out = kron_sum(out, a);
  return out;
}

Vector kron(const Vector& a, const Vector& b) {
  PERFORMA_EXPECTS(!a.empty() && !b.empty(), "kron: empty operand");
  Vector out(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      out[i * b.size() + j] = a[i] * b[j];
  return out;
}

}  // namespace performa::linalg
