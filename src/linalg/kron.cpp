#include "linalg/kron.h"

#include "linalg/pool.h"

namespace performa::linalg {

namespace {

// Shared walker for y += op(A_f)·v restricted to factor f of a Kronecker
// sum. Factor f acts on the f-th mixed-radix digit of the state index:
// states split as (left, i, right) with i the digit, `right` the stride of
// one digit step. Left = true computes the vector-matrix product instead.
template <bool Left>
void kron_factor_accumulate(const Matrix& a, std::size_t left_count,
                            std::size_t right_count, const double* v,
                            double* y) {
  const std::size_t m = a.rows();
  for (std::size_t il = 0; il < left_count; ++il) {
    const std::size_t block = il * m * right_count;
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        const double aij = Left ? a(j, i) : a(i, j);
        if (aij == 0.0) continue;
        const double* vj = v + block + j * right_count;
        double* yi = y + block + i * right_count;
        for (std::size_t ir = 0; ir < right_count; ++ir)
          yi[ir] += aij * vj[ir];
      }
    }
  }
}

template <bool Left>
void kron_sum_apply_into(const std::vector<const Matrix*>& factors,
                         const double* v, double* y, std::size_t dim) {
  for (std::size_t i = 0; i < dim; ++i) y[i] = 0.0;
  std::size_t right_count = dim;
  std::size_t left_count = 1;
  for (const Matrix* a : factors) {
    const std::size_t m = a->rows();
    right_count /= m;
    kron_factor_accumulate<Left>(*a, left_count, right_count, v, y);
    left_count *= m;
  }
}

std::vector<const Matrix*> check_factors(const std::vector<Matrix>& factors,
                                         std::size_t v_len,
                                         const char* context) {
  PERFORMA_EXPECTS(!factors.empty(), "kron_sum_apply: no factors");
  std::vector<const Matrix*> ptrs;
  ptrs.reserve(factors.size());
  std::size_t dim = 1;
  for (const Matrix& a : factors) {
    PERFORMA_EXPECTS(a.is_square() && !a.empty(),
                     "kron_sum_apply: factors must be square and non-empty");
    dim *= a.rows();
    ptrs.push_back(&a);
  }
  PERFORMA_EXPECTS(dim == v_len, context);
  return ptrs;
}

std::size_t kron_dim(const Matrix& a, std::size_t n) {
  PERFORMA_EXPECTS(a.is_square() && !a.empty() && n >= 1,
                   "kron_sum_apply: operand must be square, n >= 1");
  std::size_t dim = 1;
  for (std::size_t i = 0; i < n; ++i) dim *= a.rows();
  return dim;
}

}  // namespace

Matrix kron(const Matrix& a, const Matrix& b) {
  PERFORMA_EXPECTS(!a.empty() && !b.empty(), "kron: empty operand");
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols(), 0.0);
  for (std::size_t ia = 0; ia < a.rows(); ++ia) {
    for (std::size_t ja = 0; ja < a.cols(); ++ja) {
      const double aij = a(ia, ja);
      if (aij == 0.0) continue;
      for (std::size_t ib = 0; ib < b.rows(); ++ib) {
        for (std::size_t jb = 0; jb < b.cols(); ++jb) {
          out(ia * b.rows() + ib, ja * b.cols() + jb) = aij * b(ib, jb);
        }
      }
    }
  }
  return out;
}

Matrix kron_sum(const Matrix& a, const Matrix& b) {
  PERFORMA_EXPECTS(a.is_square() && b.is_square(),
                   "kron_sum: operands must be square");
  return kron(a, Matrix::identity(b.rows())) +
         kron(Matrix::identity(a.rows()), b);
}

Matrix kron_power(const Matrix& a, std::size_t n) {
  PERFORMA_EXPECTS(n >= 1, "kron_power: n must be >= 1");
  Matrix out = a;
  for (std::size_t i = 1; i < n; ++i) out = kron(out, a);
  return out;
}

Matrix kron_sum_power(const Matrix& a, std::size_t n) {
  PERFORMA_EXPECTS(n >= 1, "kron_sum_power: n must be >= 1");
  Matrix out = a;
  for (std::size_t i = 1; i < n; ++i) out = kron_sum(out, a);
  return out;
}

Vector kron(const Vector& a, const Vector& b) {
  PERFORMA_EXPECTS(!a.empty() && !b.empty(), "kron: empty operand");
  Vector out(a.size() * b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j)
      out[i * b.size() + j] = a[i] * b[j];
  return out;
}

Vector kron_sum_apply(const Matrix& a, std::size_t n, const Vector& v) {
  const std::size_t dim = kron_dim(a, n);
  PERFORMA_EXPECTS(v.size() == dim, "kron_sum_apply: length mismatch");
  Vector y(dim);
  std::vector<const Matrix*> factors(n, &a);
  kron_sum_apply_into<false>(factors, v.data(), y.data(), dim);
  return y;
}

Vector kron_sum_apply_left(const Matrix& a, std::size_t n, const Vector& v) {
  const std::size_t dim = kron_dim(a, n);
  PERFORMA_EXPECTS(v.size() == dim, "kron_sum_apply_left: length mismatch");
  Vector y(dim);
  std::vector<const Matrix*> factors(n, &a);
  kron_sum_apply_into<true>(factors, v.data(), y.data(), dim);
  return y;
}

Vector kron_sum_apply(const std::vector<Matrix>& factors, const Vector& v) {
  const auto ptrs =
      check_factors(factors, v.size(), "kron_sum_apply: length mismatch");
  Vector y(v.size());
  kron_sum_apply_into<false>(ptrs, v.data(), y.data(), v.size());
  return y;
}

Vector kron_sum_apply_left(const std::vector<Matrix>& factors,
                           const Vector& v) {
  const auto ptrs =
      check_factors(factors, v.size(), "kron_sum_apply_left: length mismatch");
  Vector y(v.size());
  kron_sum_apply_into<true>(ptrs, v.data(), y.data(), v.size());
  return y;
}

Matrix kron_sum_apply_left(const Matrix& a, std::size_t n, const Matrix& x) {
  const std::size_t dim = kron_dim(a, n);
  PERFORMA_EXPECTS(x.cols() == dim, "kron_sum_apply_left: shape mismatch");
  Matrix y(x.rows(), dim, 0.0);
  const std::vector<const Matrix*> factors(n, &a);
  // One row per task: rows are independent and the decomposition depends
  // only on the shape, so any thread count produces identical bits.
  parallel_for(
      x.rows(),
      [&](std::size_t r) {
        kron_sum_apply_into<true>(factors, x.data().data() + r * dim,
                                  y.data().data() + r * dim, dim);
      },
      /*min_tasks_to_fan_out=*/4);
  return y;
}

}  // namespace performa::linalg
