#include "linalg/lu.h"

#include <cmath>
#include <limits>

#include "linalg/kernels.h"
#include "obs/deadline.h"
#include "obs/metrics.h"

namespace performa::linalg {

Lu::Lu(const Matrix& a) : lu_(a) {
  // Counter only, no span: factorizations run inside the R-solver inner
  // loops (thousands per solve), where a span each would swamp the
  // trace. The batch-add keeps the cost to one relaxed atomic add.
  static obs::Counter& factorizations = obs::counter("linalg.lu.factorizations");
  factorizations.add();
  PERFORMA_EXPECTS(a.is_square() && !a.empty(), "Lu: matrix must be square");
  check_finite(a, "Lu");
  norm1_ = norm_1(a);
  const std::size_t n = lu_.rows();
  piv_.resize(n);
  min_pivot_ = std::numeric_limits<double>::infinity();
  // The elimination itself lives in the kernel layer (kernels.h): the
  // reference backend is the original rank-1 loop, the blocked backend a
  // panel/GEMM formulation producing the same pivots and (up to the sign
  // of exact zeros) the same factors. Both poll the cooperative deadline
  // every 64 columns once n >= 128 and throw NumericalError on a zero
  // pivot column.
  kern::lu_factor(n, lu_.data().data(), n, piv_.data(), &pivot_sign_,
                  &min_pivot_);
}

Vector Lu::solve(const Vector& b) const {
  const std::size_t n = order();
  PERFORMA_EXPECTS(b.size() == n, "Lu::solve: length mismatch");
  Vector x = b;
  // The factorization swapped whole rows (PA = LU with P applied to the
  // multiplier columns too), so the full permutation must be applied to b
  // before forward substitution -- interleaving swaps with elimination
  // would silently assume LINPACK-style (unswapped) multiplier storage.
  for (std::size_t k = 0; k < n; ++k) std::swap(x[k], x[piv_[k]]);
  // Forward-substitute L (unit diagonal).
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) x[i] -= lu_(i, k) * x[k];
  }
  // Back-substitute U.
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t j = k + 1; j < n; ++j) x[k] -= lu_(k, j) * x[j];
    x[k] /= lu_(k, k);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  PERFORMA_EXPECTS(b.rows() == order(), "Lu::solve: shape mismatch");
  Matrix x = b;
  kern::lu_solve(order(), lu_.data().data(), order(), piv_.data(),
                 x.data().data(), x.cols(), x.cols());
  return x;
}

Vector Lu::solve_left(const Vector& b) const {
  const std::size_t n = order();
  PERFORMA_EXPECTS(b.size() == n, "Lu::solve_left: length mismatch");
  // x A = b  <=>  (PA)^T y = b with x = P^T-composed result. Using PA = LU:
  // x A = b  <=>  x P^T L U = b. Solve z U = b, then y L = z, then x = y P.
  Vector z = b;
  // z U = b: forward substitution over columns of U.
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < k; ++i) z[k] -= z[i] * lu_(i, k);
    z[k] /= lu_(k, k);
  }
  // y L = z: back substitution (L unit lower triangular).
  for (std::size_t k = n; k-- > 0;) {
    for (std::size_t i = k + 1; i < n; ++i) z[k] -= z[i] * lu_(i, k);
  }
  // x = y P: undo row pivots (applied in reverse on the right).
  for (std::size_t k = n; k-- > 0;) std::swap(z[k], z[piv_[k]]);
  return z;
}

Matrix Lu::solve_left(const Matrix& b) const {
  PERFORMA_EXPECTS(b.cols() == order(), "Lu::solve_left: shape mismatch");
  Matrix x = b;
  kern::lu_solve_left(order(), lu_.data().data(), order(), piv_.data(),
                      x.data().data(), x.rows(), x.cols());
  return x;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(order())); }

double Lu::condition_estimate() const {
  // Hager '84: maximize ||A^{-1} x||_1 over the unit 1-norm ball by
  // gradient ascent on the vertices. Each sweep costs two O(n^2) solves;
  // convergence is almost always within 2-3 sweeps. The result is a lower
  // bound on kappa_1, good to the order of magnitude -- which is what the
  // solver guardrails need to flag ill-conditioned stages.
  const std::size_t n = order();
  Vector x(n, 1.0 / static_cast<double>(n));
  double inv_norm = 0.0;
  std::size_t last_vertex = n;  // no vertex chosen yet
  for (int sweep = 0; sweep < 5; ++sweep) {
    const Vector y = solve(x);  // A^{-1} x
    inv_norm = std::max(inv_norm, norm_1(y));
    Vector sign(n);
    for (std::size_t i = 0; i < n; ++i) sign[i] = y[i] >= 0.0 ? 1.0 : -1.0;
    const Vector z = solve_left(sign);  // A^{-T} sign(y)
    std::size_t j = 0;
    double z_max = 0.0;
    double z_dot_x = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      z_dot_x += z[i] * x[i];
      if (std::abs(z[i]) > z_max) {
        z_max = std::abs(z[i]);
        j = i;
      }
    }
    // Stationary point (or cycling on the same vertex): done.
    if (z_max <= z_dot_x || j == last_vertex) break;
    x.assign(n, 0.0);
    x[j] = 1.0;
    last_vertex = j;
  }
  return norm1_ * inv_norm;
}

double Lu::determinant() const noexcept {
  double det = pivot_sign_;
  for (std::size_t i = 0; i < order(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve(const Matrix& a, const Vector& b) { return Lu(a).solve(b); }
Matrix solve(const Matrix& a, const Matrix& b) { return Lu(a).solve(b); }
Matrix inverse(const Matrix& a) { return Lu(a).inverse(); }

}  // namespace performa::linalg
