// Matrix exponential via Padé(13) scaling-and-squaring (Higham 2005).
//
// Used to evaluate reliability functions R(t) = p exp(-B t) e of
// matrix-exponential distributions, and for transient CTMC checks in the
// test suite.
#pragma once

#include "linalg/matrix.h"

namespace performa::linalg {

/// exp(A) for a square matrix A.
Matrix expm(const Matrix& a);

}  // namespace performa::linalg
