// Pluggable dense-kernel backends for the hot linear-algebra core.
//
// Two backends implement the same contracts:
//
//   kReference -- the original scratch loops, kept verbatim. This is the
//     executable specification: simple, obviously correct, single-threaded.
//   kBlocked   -- register/cache-tiled kernels with contiguous inner loops,
//     fanned out over the linalg thread pool (pool.h). The default.
//
// Equivalence contract (enforced by linalg_kernels_test): for finite inputs
// the two backends agree element-wise to <= 8 ulps (+0.0 and -0.0 are
// considered equal). The blocked kernels earn this cheaply by construction:
// every output element accumulates its terms in the SAME order as the
// reference loops (ascending k), so tiling changes memory traffic, never
// arithmetic. Pivot decisions in the blocked LU are therefore identical to
// the reference's, and both backends raise the same error taxonomy
// (InvalidArgument / NumericalError / NonFiniteError / DeadlineError).
//
// Determinism contract: blocked kernels decompose work by problem size
// only -- never by thread count -- and every pool task writes a disjoint
// output slice, so results are bit-identical for any PERFORMA_THREADS
// value. See DESIGN.md section 12.
//
// Backend selection: PERFORMA_KERNEL_BACKEND=reference|blocked (read once,
// default blocked), overridable at runtime with set_kernel_backend().
#pragma once

#include <cstddef>

namespace performa::linalg {

enum class KernelBackend {
  kReference,  ///< original scratch loops (executable specification)
  kBlocked,    ///< tiled + threaded kernels (default)
};

/// Active backend. First call reads PERFORMA_KERNEL_BACKEND; unrecognized
/// values fall back to kBlocked.
KernelBackend kernel_backend() noexcept;

/// Override the active backend (tests, benchmarks, perfctl --kernel).
void set_kernel_backend(KernelBackend backend) noexcept;

const char* to_string(KernelBackend backend) noexcept;

// Raw row-major kernels, dispatched on kernel_backend(). All matrices are
// dense row-major with explicit leading dimensions so the blocked LU can
// operate on sub-blocks in place. Buffers must not alias.
namespace kern {

/// C = A*B with A m-by-k, B k-by-n, C m-by-n. C is overwritten. Each
/// element accumulates terms in ascending-k order.
void gemm(std::size_t m, std::size_t k, std::size_t n, const double* a,
          std::size_t lda, const double* b, std::size_t ldb, double* c,
          std::size_t ldc);

/// C -= A*B. Each element starts from its current value and subtracts
/// terms in ascending-k order -- exactly the update order of the
/// right-looking reference LU, which is what makes the blocked trailing
/// update bit-compatible with it.
void gemm_sub(std::size_t m, std::size_t k, std::size_t n, const double* a,
              std::size_t lda, const double* b, std::size_t ldb, double* c,
              std::size_t ldc);

/// In-place LU with partial pivoting: PA = LU over the n-by-n block at
/// `a`. Row swaps are applied to whole rows (multiplier columns included),
/// matching Lu's storage convention. piv[k] receives the row swapped with
/// row k at step k; pivot_sign flips per swap; min_pivot receives the
/// smallest |pivot|. Throws NumericalError when singular and DeadlineError
/// on cooperative-deadline expiry (n >= 128 only).
void lu_factor(std::size_t n, double* a, std::size_t lda, std::size_t* piv,
               int* pivot_sign, double* min_pivot);

/// Solve A*X = B in place for nrhs right-hand-side columns, given the
/// factorization produced by lu_factor. x holds B on entry, X on exit
/// (n rows, nrhs columns, leading dimension ldx).
void lu_solve(std::size_t n, const double* lu, std::size_t ldlu,
              const std::size_t* piv, double* x, std::size_t nrhs,
              std::size_t ldx);

/// Solve X*A = B in place for nrows left-hand-side rows (x is nrows-by-n
/// with leading dimension ldx).
void lu_solve_left(std::size_t n, const double* lu, std::size_t ldlu,
                   const std::size_t* piv, double* x, std::size_t nrows,
                   std::size_t ldx);

}  // namespace kern

}  // namespace performa::linalg
