// Error types shared by all performa subsystems.
//
// Following the C++ Core Guidelines (E.2, E.14) we signal contract and
// numerical failures with typed exceptions derived from the standard
// hierarchy, so callers can distinguish "you passed nonsense" from
// "the computation is numerically impossible".
#pragma once

#include <stdexcept>
#include <string>

namespace performa {

/// Thrown when an argument violates a documented precondition
/// (dimension mismatch, negative rate, probability outside [0,1], ...).
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when a numerical routine cannot produce a meaningful result
/// (singular matrix, iteration that fails to converge, infeasible
/// moment fit, unstable queue asked for a stationary solution, ...).
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a NaN or infinity crosses a stage boundary (sampler output,
/// solver iterate, statistics accumulator). Distinct from NumericalError
/// so callers can tell "the iteration diverged" from "a non-finite value
/// escaped and would silently poison everything downstream".
class NonFiniteError : public NumericalError {
 public:
  using NumericalError::NumericalError;
};

/// Thrown when a computation aborts cooperatively because the calling
/// thread's installed deadline (obs::DeadlineScope) expired or was
/// cancelled. The result is neither wrong nor impossible -- the caller
/// ran out of time budget -- so serving layers translate this into a
/// degraded (stale/timeout) answer rather than a failure.
class DeadlineError : public NumericalError {
 public:
  using NumericalError::NumericalError;
};

namespace detail {
[[noreturn]] inline void throw_invalid(const std::string& what) {
  throw InvalidArgument(what);
}
}  // namespace detail

}  // namespace performa

/// Precondition check that survives in release builds; use for cheap
/// checks on public API boundaries (Core Guidelines I.6).
#define PERFORMA_EXPECTS(cond, msg)                                   \
  do {                                                                \
    if (!(cond)) ::performa::detail::throw_invalid(msg);              \
  } while (false)
