// Continuous-time Markov chain utilities: generator validation and the
// GTH (Grassmann–Taksar–Heyman) stationary solver.
//
// GTH is a division-free-of-subtraction variant of Gaussian elimination
// that computes the stationary vector of an irreducible generator without
// cancellation, which matters when availability ratios span several orders
// of magnitude (e.g. MTTF=90 vs TPT repair phases with mean ~1e-2..1e2).
#pragma once

#include "linalg/matrix.h"

namespace performa::linalg {

/// True iff `q` looks like a CTMC generator: square, off-diagonal entries
/// >= -tol, and each row sums to zero within tol.
bool is_generator(const Matrix& q, double tol = 1e-9) noexcept;

/// Throws InvalidArgument with a specific message when is_generator fails.
void validate_generator(const Matrix& q, double tol = 1e-9);

/// True iff `p` is a stochastic matrix (rows sum to 1, entries in [0,1])
/// within tol.
bool is_stochastic(const Matrix& p, double tol = 1e-9) noexcept;

/// Stationary distribution pi of an irreducible CTMC generator Q
/// (pi Q = 0, pi e = 1), computed with the GTH algorithm.
/// Throws NumericalError if the chain is reducible (a pivot row has no
/// outgoing mass during elimination).
Vector stationary_distribution(const Matrix& q);

/// Stationary distribution of an irreducible stochastic matrix P
/// (pi P = pi, pi e = 1); runs GTH on the generator P - I.
Vector stationary_distribution_dtmc(const Matrix& p);

/// Expected long-run rate of a reward vector r under generator Q:
/// sum_i pi_i r_i.
double stationary_reward(const Matrix& q, const Vector& r);

}  // namespace performa::linalg
