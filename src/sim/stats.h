// Statistics collection for the simulators: streaming sample moments,
// time-weighted level statistics (queue-length process), and replication
// summaries with Student-t confidence intervals.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/compensated.h"

namespace performa::sim {

/// Streaming mean/variance via Welford's algorithm, with Neumaier
/// compensation on the mean and M2 accumulators: long runs feed billions
/// of small increments into a large running value, exactly the regime
/// where naive += loses the increment's low bits.
///
/// All accumulators in this header reject non-finite samples with a typed
/// NonFiniteError: a single NaN fed into a streaming mean silently poisons
/// every subsequent estimate and CI half-width, so it must die at the door.
class SampleStats {
 public:
  /// Throws NonFiniteError when `x` is NaN or infinite.
  void add(double x);

  std::size_t count() const noexcept { return count_; }
  double mean() const noexcept { return mean_.value(); }
  /// Unbiased sample variance (0 for fewer than 2 samples).
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t count_ = 0;
  linalg::CompensatedSum<double> mean_;
  linalg::CompensatedSum<double> m2_;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Time-weighted statistics of an integer-valued level process (the
/// number-in-system): integral of the level, plus a histogram capped at
/// `histogram_cap` (mass above the cap is pooled in the last bucket).
class TimeWeightedStats {
 public:
  explicit TimeWeightedStats(std::size_t histogram_cap = 4096);

  /// Record that the process sat at `level` for `duration` time units.
  void add(std::size_t level, double duration);

  /// Drop everything collected so far (end of warm-up).
  void reset() noexcept;

  double total_time() const noexcept { return total_time_.value(); }
  /// Time-average level (the simulated E[Q]).
  double mean() const;
  /// Time fraction at exactly `level` (levels above the cap pool at cap).
  double pmf(std::size_t level) const;
  /// Time fraction at or above `level` (for level <= cap).
  double tail(std::size_t level) const;

  std::size_t histogram_cap() const noexcept { return histogram_.size() - 1; }

 private:
  std::vector<double> histogram_;  // time at level k; last bucket pools >cap
  linalg::CompensatedSum<double> weighted_sum_;  // integral of level dt
  linalg::CompensatedSum<double> total_time_;
};

/// Aggregates per-replication point estimates into a mean and a 95%
/// Student-t confidence half-width.
struct ReplicationSummary {
  double mean = 0.0;
  double stddev = 0.0;       ///< across replications
  double ci_halfwidth = 0.0; ///< 95% two-sided
  std::size_t replications = 0;
};

/// Summarize independent replication estimates (needs >= 2 values for a
/// non-zero CI; throws InvalidArgument when empty).
ReplicationSummary summarize_replications(const std::vector<double>& values);

/// Two-sided 95% Student-t quantile for the given degrees of freedom
/// (tabulated to 30, normal beyond).
double t_quantile_95(std::size_t dof) noexcept;

/// Log-binned histogram for positive continuous samples (sojourn times):
/// geometric bins cover [min_value, max_value), underflow/overflow are
/// pooled at the ends. Tail queries are resolved at bin granularity.
class LogHistogram {
 public:
  /// `bins_per_decade` geometric bins between min_value and max_value.
  LogHistogram(double min_value = 1e-3, double max_value = 1e6,
               std::size_t bins_per_decade = 16);

  void add(double x);

  std::size_t count() const noexcept { return count_; }

  /// Fraction of samples strictly greater than x (bin-granular: counts
  /// all samples in bins whose lower edge is >= x).
  double tail(double x) const;

  /// Smallest bin edge e with tail(e) <= eps (an upper quantile at bin
  /// granularity); throws NumericalError when no samples are present.
  double quantile_upper(double eps) const;

 private:
  std::size_t bin_of(double x) const;
  double edge(std::size_t bin) const;

  double log_min_;
  double log_step_;
  std::size_t n_bins_;
  std::vector<std::size_t> counts_;  // n_bins_ + 2 (under/overflow)
  std::size_t count_ = 0;
};

/// Batch-means estimator: a single long run is split into `n_batches`
/// equal batches whose means are treated as (approximately) independent
/// replications -- the classic alternative to independent replications
/// when warm-up is expensive (heavy-tailed repair processes make it very
/// expensive, Sec. 4 of the paper).
class BatchMeans {
 public:
  /// `n_batches` >= 2; 10..30 is customary.
  explicit BatchMeans(std::size_t n_batches = 20);

  /// Feed one (time-weighted) observation: level held for `duration`.
  void add(double level, double duration);

  /// Number of complete batches so far (the last partial batch is
  /// excluded from summaries).
  std::size_t complete_batches() const noexcept;

  /// Summary over complete batch means; throws NumericalError if fewer
  /// than 2 batches completed.
  ReplicationSummary summary() const;

  /// Target batch duration is adaptive: batches close when their total
  /// time reaches total_time/n_batches of everything seen so far, via
  /// doubling. Returns the current batch-duration target.
  double batch_duration() const noexcept { return batch_duration_; }

 private:
  void close_batch();

  std::size_t n_batches_;
  double batch_duration_ = 1.0;
  linalg::CompensatedSum<double> current_sum_;   // integral over open batch
  linalg::CompensatedSum<double> current_time_;  // time in the open batch
  std::vector<double> means_;
};

}  // namespace performa::sim
