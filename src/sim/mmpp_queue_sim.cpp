#include "sim/mmpp_queue_sim.h"

#include <limits>
#include <random>

#include "linalg/errors.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/random.h"

namespace performa::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Precomputed per-phase jump distribution of the modulating chain.
struct PhaseJumps {
  double hold_rate;                 // -q(i,i)
  std::vector<double> cdf;          // cumulative transition probabilities
  std::vector<std::size_t> target;  // destinations
};

std::vector<PhaseJumps> build_jumps(const map::Mmpp& mmpp) {
  const auto& q = mmpp.generator();
  std::vector<PhaseJumps> jumps(mmpp.dim());
  for (std::size_t i = 0; i < mmpp.dim(); ++i) {
    PhaseJumps& j = jumps[i];
    j.hold_rate = -q(i, i);
    double cum = 0.0;
    for (std::size_t k = 0; k < mmpp.dim(); ++k) {
      if (k == i || q(i, k) <= 0.0) continue;
      cum += q(i, k) / j.hold_rate;
      j.cdf.push_back(cum);
      j.target.push_back(k);
    }
    if (!j.cdf.empty()) j.cdf.back() = 1.0;
  }
  return jumps;
}

}  // namespace

MmppQueueSimResult simulate_mmpp_queue(const map::Mmpp& service,
                                       const MmppQueueSimConfig& config) {
  PERFORMA_SPAN("sim.mmpp_queue.run");
  PERFORMA_EXPECTS(config.lambda > 0.0, "simulate_mmpp_queue: lambda > 0");
  PERFORMA_EXPECTS(config.horizon > 0.0 && config.warmup >= 0.0,
                   "simulate_mmpp_queue: bad time configuration");
  if (config.resume_from) {
    PERFORMA_EXPECTS(config.resume_from->phase < service.dim(),
                     "simulate_mmpp_queue: resume snapshot was taken with a "
                     "different modulating process");
  }

  const bool resuming = config.resume_from != nullptr;
  Rng rng = resuming ? restore_rng_state(config.resume_from->rng_state)
                     : Rng(config.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  auto exp_draw = [&rng](double rate) {
    return std::exponential_distribution<double>(rate)(rng);
  };

  const std::vector<PhaseJumps> jumps = build_jumps(service);

  // Start in the stationary phase to shorten warm-up.
  std::size_t phase = 0;
  if (!resuming) {
    const auto pi = service.stationary_phases();
    double u = uni(rng), cum = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) {
      cum += pi[i];
      if (u <= cum) {
        phase = i;
        break;
      }
    }
  }

  MmppQueueSimResult result;
  result.queue_stats = TimeWeightedStats(config.histogram_cap);
  TimeWeightedStats& stats = result.queue_stats;

  double now = 0.0;
  std::size_t queue = 0;
  const double end = config.warmup + config.horizon;
  bool warm = config.warmup == 0.0;

  // Scheduled next-arrival; service and phase-change are redrawn after
  // every event (valid by memorylessness).
  double next_arrival = resuming ? 0.0 : exp_draw(config.lambda);

  if (resuming) {
    const MmppQueueSimState& st = *config.resume_from;
    result = st.partial;
    result.paused = false;
    result.state.reset();
    result.final_rng_state.clear();
    now = st.now;
    next_arrival = st.next_arrival;
    phase = st.phase;
    queue = st.queue;
    warm = st.warm;
  }

  // Snapshot the loop state between events; the per-iteration service and
  // phase-change draws happen after this point, so a resumed run redraws
  // them from the identical RNG position.
  auto snapshot = [&]() {
    auto st = std::make_shared<MmppQueueSimState>();
    st->rng_state = save_rng_state(rng);
    st->now = now;
    st->next_arrival = next_arrival;
    st->phase = phase;
    st->queue = queue;
    st->warm = warm;
    st->partial = result;
    st->partial.state.reset();
    st->partial.paused = false;
    return st;
  };

  while (now < end) {
    if (config.pause_after_events != 0 &&
        result.events >= config.pause_after_events) {
      result.paused = true;
      break;
    }
    const double svc_rate = queue > 0 ? service.rates()[phase] : 0.0;
    const double t_service =
        svc_rate > 0.0 ? now + exp_draw(svc_rate) : kInf;
    const double t_phase = jumps[phase].hold_rate > 0.0
                               ? now + exp_draw(jumps[phase].hold_rate)
                               : kInf;

    double t_next = std::min({next_arrival, t_service, t_phase});
    bool clipped = false;
    if (t_next > end) {
      t_next = end;
      clipped = true;
    }

    // Account time spent at the current level.
    if (warm) {
      stats.add(queue, t_next - now);
    } else if (t_next >= config.warmup) {
      // Split the interval at the warm-up boundary.
      stats.add(queue, t_next - config.warmup);
      warm = true;
    }

    now = t_next;
    if (clipped) break;
    ++result.events;

    if (now == next_arrival) {
      ++queue;
      if (warm) ++result.arrivals;
      next_arrival = now + exp_draw(config.lambda);
    } else if (now == t_service) {
      --queue;
      if (warm) ++result.services;
    } else {
      // Phase change.
      const PhaseJumps& j = jumps[phase];
      const double u = uni(rng);
      std::size_t k = 0;
      while (k + 1 < j.cdf.size() && u > j.cdf[k]) ++k;
      phase = j.target[k];
    }
  }

  // A paused run can stop before any post-warm-up time accumulates.
  if (stats.total_time() > 0.0) {
    result.mean_queue_length = stats.mean();
    result.probability_empty = stats.pmf(0);
  }
  // Batch the run's totals into the metrics registry once per call so the
  // event loop itself stays uninstrumented.
  {
    static obs::Counter& runs = obs::counter("sim.mmpp_queue.runs");
    static obs::Counter& events = obs::counter("sim.mmpp_queue.events");
    runs.add(1);
    events.add(result.events);
  }

  result.final_rng_state = save_rng_state(rng);
  if (result.paused) result.state = snapshot();
  return result;
}

}  // namespace performa::sim
