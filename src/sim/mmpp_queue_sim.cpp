#include "sim/mmpp_queue_sim.h"

#include <limits>
#include <random>

#include "linalg/errors.h"
#include "sim/random.h"

namespace performa::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Precomputed per-phase jump distribution of the modulating chain.
struct PhaseJumps {
  double hold_rate;                 // -q(i,i)
  std::vector<double> cdf;          // cumulative transition probabilities
  std::vector<std::size_t> target;  // destinations
};

std::vector<PhaseJumps> build_jumps(const map::Mmpp& mmpp) {
  const auto& q = mmpp.generator();
  std::vector<PhaseJumps> jumps(mmpp.dim());
  for (std::size_t i = 0; i < mmpp.dim(); ++i) {
    PhaseJumps& j = jumps[i];
    j.hold_rate = -q(i, i);
    double cum = 0.0;
    for (std::size_t k = 0; k < mmpp.dim(); ++k) {
      if (k == i || q(i, k) <= 0.0) continue;
      cum += q(i, k) / j.hold_rate;
      j.cdf.push_back(cum);
      j.target.push_back(k);
    }
    if (!j.cdf.empty()) j.cdf.back() = 1.0;
  }
  return jumps;
}

}  // namespace

MmppQueueSimResult simulate_mmpp_queue(const map::Mmpp& service,
                                       const MmppQueueSimConfig& config) {
  PERFORMA_EXPECTS(config.lambda > 0.0, "simulate_mmpp_queue: lambda > 0");
  PERFORMA_EXPECTS(config.horizon > 0.0 && config.warmup >= 0.0,
                   "simulate_mmpp_queue: bad time configuration");

  Rng rng(config.seed);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  auto exp_draw = [&rng](double rate) {
    return std::exponential_distribution<double>(rate)(rng);
  };

  const std::vector<PhaseJumps> jumps = build_jumps(service);

  // Start in the stationary phase to shorten warm-up.
  std::size_t phase = 0;
  {
    const auto pi = service.stationary_phases();
    double u = uni(rng), cum = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) {
      cum += pi[i];
      if (u <= cum) {
        phase = i;
        break;
      }
    }
  }

  MmppQueueSimResult result;
  result.queue_stats = TimeWeightedStats(config.histogram_cap);
  TimeWeightedStats& stats = result.queue_stats;

  double now = 0.0;
  std::size_t queue = 0;
  const double end = config.warmup + config.horizon;
  bool warm = config.warmup == 0.0;

  // Scheduled next-arrival; service and phase-change are redrawn after
  // every event (valid by memorylessness).
  double next_arrival = exp_draw(config.lambda);

  while (now < end) {
    const double svc_rate = queue > 0 ? service.rates()[phase] : 0.0;
    const double t_service =
        svc_rate > 0.0 ? now + exp_draw(svc_rate) : kInf;
    const double t_phase = jumps[phase].hold_rate > 0.0
                               ? now + exp_draw(jumps[phase].hold_rate)
                               : kInf;

    double t_next = std::min({next_arrival, t_service, t_phase});
    bool clipped = false;
    if (t_next > end) {
      t_next = end;
      clipped = true;
    }

    // Account time spent at the current level.
    if (warm) {
      stats.add(queue, t_next - now);
    } else if (t_next >= config.warmup) {
      // Split the interval at the warm-up boundary.
      stats.add(queue, t_next - config.warmup);
      warm = true;
    }

    now = t_next;
    if (clipped) break;

    if (now == next_arrival) {
      ++queue;
      if (warm) ++result.arrivals;
      next_arrival = now + exp_draw(config.lambda);
    } else if (now == t_service) {
      --queue;
      if (warm) ++result.services;
    } else {
      // Phase change.
      const PhaseJumps& j = jumps[phase];
      const double u = uni(rng);
      std::size_t k = 0;
      while (k + 1 < j.cdf.size() && u > j.cdf[k]) ++k;
      phase = j.target[k];
    }
  }

  result.mean_queue_length = stats.mean();
  result.probability_empty = stats.pmf(0);
  return result;
}

}  // namespace performa::sim
