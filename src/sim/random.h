// Random-number plumbing for the discrete-event simulators.
//
// A Sampler is a type-erased duration generator; factories cover the
// distributions the paper's experiments need (exponential, any phase-type
// via exact CTMC simulation, plus deterministic/lognormal/bounded-Pareto
// for robustness studies beyond the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <random>

#include "medist/me_dist.h"

namespace performa::sim {

/// The engine shared by all simulators. mt19937_64 is deterministic per
/// seed across platforms, which the test suite relies on.
using Rng = std::mt19937_64;

/// Type-erased duration sampler.
using Sampler = std::function<double(Rng&)>;

/// Exponential durations with the given rate.
Sampler exponential_sampler(double rate);

/// Exponential durations with the given mean.
Sampler exponential_sampler_mean(double mean);

/// Exact sampler for any phase-type matrix-exponential distribution.
Sampler me_sampler(const medist::MeDistribution& dist);

/// Constant duration (degenerate distribution).
Sampler deterministic_sampler(double value);

/// Lognormal durations with the given mean and squared coefficient of
/// variation (scv > 0).
Sampler lognormal_sampler(double mean, double scv);

/// Bounded Pareto on [x_min, x_max] with tail exponent alpha -- a direct
/// "truncated power-tail" alternative to the TPT phase-type construction.
Sampler bounded_pareto_sampler(double alpha, double x_min, double x_max);

/// Independent child seed derivation (splitmix64 step), so replications
/// and per-stream generators never share state.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace performa::sim
