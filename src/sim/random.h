// Random-number plumbing for the discrete-event simulators.
//
// A Sampler is a type-erased duration generator; factories cover the
// distributions the paper's experiments need (exponential, any phase-type
// via exact CTMC simulation, plus deterministic/lognormal/bounded-Pareto
// for robustness studies beyond the paper).
#pragma once

#include <cstdint>
#include <functional>
#include <random>
#include <string>

#include "medist/me_dist.h"

namespace performa::sim {

/// The engine shared by all simulators. mt19937_64 is deterministic per
/// seed across platforms, which the test suite relies on.
using Rng = std::mt19937_64;

/// Type-erased duration sampler.
using Sampler = std::function<double(Rng&)>;

/// Exponential durations with the given rate.
Sampler exponential_sampler(double rate);

/// Exponential durations with the given mean.
Sampler exponential_sampler_mean(double mean);

/// Exact sampler for any phase-type matrix-exponential distribution.
Sampler me_sampler(const medist::MeDistribution& dist);

/// Constant duration (degenerate distribution).
Sampler deterministic_sampler(double value);

/// Lognormal durations with the given mean and squared coefficient of
/// variation (scv > 0).
Sampler lognormal_sampler(double mean, double scv);

/// Bounded Pareto on [x_min, x_max] with tail exponent alpha -- a direct
/// "truncated power-tail" alternative to the TPT phase-type construction.
Sampler bounded_pareto_sampler(double alpha, double x_min, double x_max);

/// Independent child seed derivation (splitmix64 step), so replications
/// and per-stream generators never share state.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

/// Serialize the engine's full state (mt19937_64 word vector + position)
/// as a whitespace-separated decimal string. The encoding is the
/// standard-library stream format, so restore_rng_state(save_rng_state(r))
/// continues the stream bit-exactly on any platform.
std::string save_rng_state(const Rng& rng);

/// Rebuild an engine from a string produced by save_rng_state(). Throws
/// InvalidArgument when the text is not a complete, well-formed state.
Rng restore_rng_state(const std::string& state);

}  // namespace performa::sim
