#include "sim/fault_injection.h"

#include <cmath>
#include <cstdlib>

#include "linalg/errors.h"

namespace performa::sim {

void FaultPlan::validate() const {
  for (const CommonModeCrash& c : crashes) {
    PERFORMA_EXPECTS(std::isfinite(c.time) && c.time >= 0.0,
                     "FaultPlan: crash time must be finite and >= 0");
    PERFORMA_EXPECTS(c.servers >= 1, "FaultPlan: crash needs >= 1 server");
  }
  for (const ArrivalBurst& b : bursts) {
    PERFORMA_EXPECTS(std::isfinite(b.time) && b.time >= 0.0,
                     "FaultPlan: burst time must be finite and >= 0");
    PERFORMA_EXPECTS(b.count >= 1, "FaultPlan: burst needs >= 1 arrival");
  }
  PERFORMA_EXPECTS(repair_preemption >= 0.0 && repair_preemption <= 1.0,
                   "FaultPlan: repair_preemption must lie in [0,1]");
}

namespace {

// Every parse error names the offending token and its 1-based column in
// the full spec, so a typo deep inside a combined scenario like
// "common-mode-2@50+burst-x@120" is pinpointed instead of reported as a
// generic clause failure:
//   parse_scenario: bad number 'x' at position 24 in 'common-mode-...'
[[noreturn]] void fail(const std::string& spec, std::size_t offset,
                       const std::string& token, const std::string& why) {
  throw InvalidArgument("parse_scenario: " + why + " '" +
                        (token.empty() ? "<empty>" : token) +
                        "' at position " + std::to_string(offset + 1) +
                        " in '" + spec + "'\n" + scenario_grammar());
}

// std::strtod accepts the exact number grammar we document; anything
// trailing is a parse error. `offset` is the token's index in `spec`.
double parse_number(const std::string& spec, std::size_t offset,
                    const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (text.empty() || end != begin + text.size()) {
    fail(spec, offset, text, "bad number");
  }
  return value;
}

void parse_clause(const std::string& spec, std::size_t offset,
                  const std::string& clause, FaultPlan& plan) {
  auto starts_with = [&clause](const char* prefix) {
    return clause.rfind(prefix, 0) == 0;
  };
  if (clause == "zero-repair") {
    plan.zero_length_repairs = true;
    return;
  }
  if (clause == "infinite-task") {
    plan.infinite_first_task = true;
    return;
  }
  if (starts_with("refail-")) {
    plan.repair_preemption = parse_number(spec, offset + 7, clause.substr(7));
    return;
  }
  if (starts_with("common-mode-") || starts_with("burst-")) {
    const bool crash = starts_with("common-mode-");
    const std::size_t head = crash ? 12 : 6;
    const std::size_t at = clause.find('@');
    if (at == std::string::npos || at <= head) {
      fail(spec, offset, clause, "expected <size>@<time> in clause");
    }
    const std::string size_token = clause.substr(head, at - head);
    const double size = parse_number(spec, offset + head, size_token);
    const double time =
        parse_number(spec, offset + at + 1, clause.substr(at + 1));
    if (!(size >= 1.0 && size == std::floor(size))) {
      fail(spec, offset + head, size_token,
           "size must be a positive integer, got");
    }
    if (crash) {
      plan.crashes.push_back({time, static_cast<unsigned>(size)});
    } else {
      plan.bursts.push_back({time, static_cast<std::size_t>(size)});
    }
    return;
  }
  fail(spec, offset, clause, "unknown clause");
}

}  // namespace

FaultPlan parse_scenario(const std::string& spec) {
  PERFORMA_EXPECTS(!spec.empty(), "parse_scenario: empty spec");
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t plus = spec.find('+', start);
    const std::size_t end = plus == std::string::npos ? spec.size() : plus;
    parse_clause(spec, start, spec.substr(start, end - start), plan);
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  plan.validate();
  return plan;
}

std::string scenario_grammar() {
  return
      "scenario clauses (combine with '+'):\n"
      "  common-mode-<k>@<t>  crash k servers simultaneously at sim time t\n"
      "  burst-<m>@<t>        inject m extra arrivals at sim time t\n"
      "  refail-<p>           preempt each completing repair with prob p\n"
      "  zero-repair          degenerate sampler: all repairs take 0 time\n"
      "  infinite-task        first injected task carries infinite work\n";
}

}  // namespace performa::sim
