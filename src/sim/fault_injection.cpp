#include "sim/fault_injection.h"

#include <cmath>
#include <cstdlib>

#include "linalg/errors.h"

namespace performa::sim {

void FaultPlan::validate() const {
  for (const CommonModeCrash& c : crashes) {
    PERFORMA_EXPECTS(std::isfinite(c.time) && c.time >= 0.0,
                     "FaultPlan: crash time must be finite and >= 0");
    PERFORMA_EXPECTS(c.servers >= 1, "FaultPlan: crash needs >= 1 server");
  }
  for (const ArrivalBurst& b : bursts) {
    PERFORMA_EXPECTS(std::isfinite(b.time) && b.time >= 0.0,
                     "FaultPlan: burst time must be finite and >= 0");
    PERFORMA_EXPECTS(b.count >= 1, "FaultPlan: burst needs >= 1 arrival");
  }
  PERFORMA_EXPECTS(repair_preemption >= 0.0 && repair_preemption <= 1.0,
                   "FaultPlan: repair_preemption must lie in [0,1]");
}

namespace {

// "name-<number>@<number>" clause helpers. std::strtod accepts the exact
// grammar we document; anything trailing is a parse error.
double parse_number(const std::string& text, const char* clause) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  PERFORMA_EXPECTS(end == begin + text.size() && text.size() > 0,
                   std::string("parse_scenario: bad number in clause '") +
                       clause + "'");
  return value;
}

void parse_clause(const std::string& clause, FaultPlan& plan) {
  auto starts_with = [&clause](const char* prefix) {
    return clause.rfind(prefix, 0) == 0;
  };
  if (clause == "zero-repair") {
    plan.zero_length_repairs = true;
    return;
  }
  if (clause == "infinite-task") {
    plan.infinite_first_task = true;
    return;
  }
  if (starts_with("refail-")) {
    plan.repair_preemption = parse_number(clause.substr(7), clause.c_str());
    return;
  }
  if (starts_with("common-mode-") || starts_with("burst-")) {
    const bool crash = starts_with("common-mode-");
    const std::size_t head = crash ? 12 : 6;
    const std::size_t at = clause.find('@');
    PERFORMA_EXPECTS(at != std::string::npos && at > head,
                     std::string("parse_scenario: clause '") + clause +
                         "' needs <size>@<time>");
    const double size =
        parse_number(clause.substr(head, at - head), clause.c_str());
    const double time = parse_number(clause.substr(at + 1), clause.c_str());
    PERFORMA_EXPECTS(size >= 1.0 && size == std::floor(size),
                     std::string("parse_scenario: size in '") + clause +
                         "' must be a positive integer");
    if (crash) {
      plan.crashes.push_back({time, static_cast<unsigned>(size)});
    } else {
      plan.bursts.push_back({time, static_cast<std::size_t>(size)});
    }
    return;
  }
  throw InvalidArgument(std::string("parse_scenario: unknown clause '") +
                        clause + "'\n" + scenario_grammar());
}

}  // namespace

FaultPlan parse_scenario(const std::string& spec) {
  PERFORMA_EXPECTS(!spec.empty(), "parse_scenario: empty spec");
  FaultPlan plan;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t plus = spec.find('+', start);
    const std::size_t end = plus == std::string::npos ? spec.size() : plus;
    parse_clause(spec.substr(start, end - start), plan);
    if (plus == std::string::npos) break;
    start = plus + 1;
  }
  plan.validate();
  return plan;
}

std::string scenario_grammar() {
  return
      "scenario clauses (combine with '+'):\n"
      "  common-mode-<k>@<t>  crash k servers simultaneously at sim time t\n"
      "  burst-<m>@<t>        inject m extra arrivals at sim time t\n"
      "  refail-<p>           preempt each completing repair with prob p\n"
      "  zero-repair          degenerate sampler: all repairs take 0 time\n"
      "  infinite-task        first injected task carries infinite work\n";
}

}  // namespace performa::sim
