// Deterministic fault injection for the cluster simulator.
//
// The analytic model claims to capture behaviour under correlated
// failures, pathological repair distributions and load spikes; this
// harness lets the simulator *exercise* those regimes on purpose. A
// FaultPlan schedules events that the event loop executes at exact
// simulated times (so every scenario is reproducible per seed), and a
// SimBudget watchdog bounds runaway runs -- a deliberately unstable
// scenario returns partial statistics flagged as degraded instead of
// hanging the process.
//
// Scenario spec grammar (perfctl --inject, scenario()):
//
//   common-mode-<k>@<t>   crash k servers simultaneously at time t
//   burst-<m>@<t>         inject m extra arrivals at time t
//   refail-<p>            each repair completion is preempted with
//                         probability p (the repair restarts: re-failure
//                         during repair)
//   zero-repair           degenerate sampler: all repairs take 0 time
//   infinite-task         degenerate sampler: one arrival at t=0 carries
//                         infinite work (its server never completes)
//
// Multiple clauses can be combined with '+', e.g.
// "common-mode-2@50+burst-200@60+refail-0.3".
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace performa::sim {

/// Simultaneous (correlated) crash of `servers` UP servers at `time`.
struct CommonModeCrash {
  double time = 0.0;
  unsigned servers = 1;
};

/// `count` extra task arrivals injected at `time` (a load spike).
struct ArrivalBurst {
  double time = 0.0;
  std::size_t count = 1;
};

/// Everything a scenario can do to a simulation run.
struct FaultPlan {
  std::vector<CommonModeCrash> crashes;
  std::vector<ArrivalBurst> bursts;
  /// Probability that a completing repair is preempted and restarts
  /// (re-failure during repair). 0 disables.
  double repair_preemption = 0.0;
  /// Degenerate-sampler scenarios.
  bool zero_length_repairs = false;  ///< override: repairs take 0 time
  bool infinite_first_task = false;  ///< first injected task has inf work

  bool empty() const noexcept {
    return crashes.empty() && bursts.empty() && repair_preemption == 0.0 &&
           !zero_length_repairs && !infinite_first_task;
  }

  /// Throws InvalidArgument on out-of-range probabilities, negative
  /// times, or zero-sized injections.
  void validate() const;
};

/// Wall-clock / event / simulated-time budget for one run. Zero means
/// unlimited. When any limit trips, the run stops and returns partial
/// statistics with `degraded` set (see ClusterSimResult).
struct SimBudget {
  double max_wall_seconds = 0.0;
  std::size_t max_events = 0;
  double max_sim_time = 0.0;

  bool unlimited() const noexcept {
    return max_wall_seconds == 0.0 && max_events == 0 && max_sim_time == 0.0;
  }
};

/// Parse a scenario spec (grammar above). Throws InvalidArgument on
/// malformed specs, with the offending clause in the message.
FaultPlan parse_scenario(const std::string& spec);

/// One-line description of each supported clause, for CLI usage text.
std::string scenario_grammar();

}  // namespace performa::sim
