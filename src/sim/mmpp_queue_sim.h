// Direct simulation of the load-independent M/MMPP/1 queue -- exactly the
// process the analytic QBD solves. Used to validate the numerical solution
// (the "Simulation M/2-Burst/1" crosses of Fig. 7) independently of the
// matrix-geometric machinery.
//
// All three event streams (Poisson arrivals, modulating phase changes,
// modulated exponential services) are memoryless, so the simulator simply
// races freshly drawn exponentials after every event.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "map/mmpp.h"
#include "sim/stats.h"

namespace performa::sim {

struct MmppQueueSimState;  // mid-run snapshot, defined below

/// Configuration of an M/MMPP/1 simulation run.
struct MmppQueueSimConfig {
  double lambda = 1.0;           ///< Poisson arrival rate
  double horizon = 1e5;          ///< simulated time after warm-up
  double warmup = 1e4;           ///< time discarded before collecting stats
  std::uint64_t seed = 1;        ///< RNG seed
  std::size_t histogram_cap = 4096;

  /// Pause once the cumulative event count reaches this value and return
  /// a resumable snapshot in MmppQueueSimResult::state. 0 disables.
  std::size_t pause_after_events = 0;
  /// Resume from a paused run's snapshot (same service process and
  /// config required); the replay is bit-identical to an uninterrupted
  /// run.
  std::shared_ptr<const MmppQueueSimState> resume_from;
};

/// Point estimates from one run.
struct MmppQueueSimResult {
  double mean_queue_length = 0.0;
  double probability_empty = 0.0;
  TimeWeightedStats queue_stats{0};  ///< full time-weighted distribution
  std::size_t arrivals = 0;
  std::size_t services = 0;
  std::size_t events = 0;  ///< processed events (arrival/service/phase)

  bool paused = false;  ///< pause_after_events stopped the run early
  std::shared_ptr<const MmppQueueSimState> state;  ///< set only when paused
  /// RNG-stream position when the run ended (paused or complete).
  std::string final_rng_state;
};

/// Complete mid-run state of simulate_mmpp_queue at an event boundary.
struct MmppQueueSimState {
  std::string rng_state;  ///< save_rng_state() of the engine
  double now = 0.0;
  double next_arrival = 0.0;
  std::size_t phase = 0;
  std::size_t queue = 0;
  bool warm = false;
  MmppQueueSimResult partial;  ///< counters and statistics so far
};

/// Run one simulation of the M/MMPP/1 queue with the given modulating
/// service process.
MmppQueueSimResult simulate_mmpp_queue(const map::Mmpp& service,
                                       const MmppQueueSimConfig& config);

}  // namespace performa::sim
