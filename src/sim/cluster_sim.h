// Discrete-event simulation of the physical N-server cluster (Sec. 4 of
// the paper): a FIFO dispatcher queue, N servers with their own UP/DOWN
// renewal processes, degraded service speed delta*nu_p while DOWN, and --
// for crash faults (delta = 0) -- the Discard / Restart / Resume failure
// handling strategies with front- or back-of-queue re-insertion.
//
// Unlike the analytic M/MMPP/1 model this simulator is load-dependent:
// a task is served by one server, so with fewer tasks than servers the
// cluster cannot use its full capacity (the effect quantified in Fig. 7).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_injection.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace performa::sim {

/// What happens to the task being executed when its server crashes
/// (only meaningful for delta = 0; degraded servers keep working).
enum class FailureStrategy {
  kDiscard,       ///< drop the interrupted task entirely
  kRestartFront,  ///< re-run from scratch, head of the queue
  kRestartBack,   ///< re-run from scratch, tail of the queue
  kResumeFront,   ///< continue from the interruption point, head of queue
  kResumeBack,    ///< continue from the interruption point, tail of queue
};

const char* to_string(FailureStrategy s) noexcept;

/// Simulation parameters. Durations come from type-erased samplers so any
/// distribution (phase-type or not) can be plugged in.
struct ClusterSimConfig {
  unsigned n_servers = 2;
  double nu_p = 2.0;    ///< service speed of an UP server
  double delta = 0.2;   ///< speed factor while DOWN (0 = crash)
  double lambda = 1.0;  ///< Poisson task arrival rate

  Sampler up = exponential_sampler_mean(90.0);    ///< TTF durations
  Sampler down = exponential_sampler_mean(10.0);  ///< TTR durations
  /// Optional renewal interarrival sampler. Unset (default): Poisson
  /// arrivals at rate `lambda`. When set, it drives the arrival process
  /// and `lambda` is only documentation (Sec. 2.4: general task arrival
  /// processes).
  Sampler interarrival;
  /// Task work requirement (mean 1.0 reproduces the paper's exponential
  /// task times with mean 1/nu_p at full speed).
  Sampler task_work = exponential_sampler(1.0);

  FailureStrategy strategy = FailureStrategy::kResumeBack;

  /// Stop after this many completed UP/DOWN cycles (counted across all
  /// servers, after warm-up). The paper uses 2e5 cycles per run.
  std::size_t cycles = 20000;
  /// Cycles discarded before statistics collection starts.
  std::size_t warmup_cycles = 2000;

  std::uint64_t seed = 1;
  std::size_t histogram_cap = 4096;

  /// Deterministic fault-injection plan (empty by default). Scheduled
  /// events fire at exact simulated times, so runs stay reproducible per
  /// seed.
  FaultPlan faults;
  /// Watchdog budget; a tripped budget stops the run and returns partial
  /// statistics flagged as degraded instead of hanging (e.g. when a
  /// scenario makes the system unstable).
  SimBudget budget;

  void validate() const;
};

/// Point estimates from one simulation run.
struct ClusterSimResult {
  double mean_queue_length = 0.0;  ///< time-average number in system
  double probability_empty = 0.0;
  TimeWeightedStats queue_stats{0};  ///< full time-weighted distribution
  SampleStats system_time;  ///< sojourn times of *completed* tasks
  /// Log-binned sojourn-time distribution of completed tasks, for
  /// delay-bound (QoS) tail estimates Pr(S > d).
  LogHistogram system_time_hist{1e-3, 1e7, 16};
  std::size_t arrivals = 0;
  std::size_t completed = 0;
  std::size_t discarded = 0;  ///< tasks dropped by the Discard strategy
  std::size_t cycles = 0;     ///< UP/DOWN cycles simulated after warm-up
  double sim_time = 0.0;      ///< simulated time after warm-up

  // Watchdog / fault-injection bookkeeping.
  bool degraded = false;      ///< a budget tripped; statistics are partial
  std::string degraded_reason;
  std::size_t events = 0;               ///< total events processed
  std::size_t injected_crashes = 0;     ///< servers hit by common-mode crashes
  std::size_t injected_arrivals = 0;    ///< tasks injected by bursts
  std::size_t repair_preemptions = 0;   ///< repairs that re-failed mid-repair
};

/// Run one simulation.
ClusterSimResult simulate_cluster(const ClusterSimConfig& config);

/// Run `replications` independent runs (seeds derived from config.seed)
/// and return all results.
std::vector<ClusterSimResult> replicate_cluster(const ClusterSimConfig& config,
                                                std::size_t replications);

/// Convenience: replication summary of the mean queue length.
ReplicationSummary mean_queue_length_summary(const ClusterSimConfig& config,
                                             std::size_t replications);

}  // namespace performa::sim
