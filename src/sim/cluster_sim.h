// Discrete-event simulation of the physical N-server cluster (Sec. 4 of
// the paper): a FIFO dispatcher queue, N servers with their own UP/DOWN
// renewal processes, degraded service speed delta*nu_p while DOWN, and --
// for crash faults (delta = 0) -- the Discard / Restart / Resume failure
// handling strategies with front- or back-of-queue re-insertion.
//
// Unlike the analytic M/MMPP/1 model this simulator is load-dependent:
// a task is served by one server, so with fewer tasks than servers the
// cluster cannot use its full capacity (the effect quantified in Fig. 7).
//
// Optionally the independent per-server repairs are replaced by a shared
// repair facility (repair_crews / spares below) with the same two-echelon
// semantics as map/repair_facility.h, for cross-validating the
// level-dependent analytic model.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault_injection.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace performa::sim {

/// What happens to the task being executed when its server crashes
/// (only meaningful for delta = 0; degraded servers keep working).
enum class FailureStrategy {
  kDiscard,       ///< drop the interrupted task entirely
  kRestartFront,  ///< re-run from scratch, head of the queue
  kRestartBack,   ///< re-run from scratch, tail of the queue
  kResumeFront,   ///< continue from the interruption point, head of queue
  kResumeBack,    ///< continue from the interruption point, tail of queue
};

const char* to_string(FailureStrategy s) noexcept;

struct ClusterSimState;  // full mid-run snapshot, defined below

/// Simulation parameters. Durations come from type-erased samplers so any
/// distribution (phase-type or not) can be plugged in.
struct ClusterSimConfig {
  unsigned n_servers = 2;
  double nu_p = 2.0;    ///< service speed of an UP server
  double delta = 0.2;   ///< speed factor while DOWN (0 = crash)
  double lambda = 1.0;  ///< Poisson task arrival rate

  Sampler up = exponential_sampler_mean(90.0);    ///< TTF durations
  Sampler down = exponential_sampler_mean(10.0);  ///< TTR durations
  /// Optional renewal interarrival sampler. Unset (default): Poisson
  /// arrivals at rate `lambda`. When set, it drives the arrival process
  /// and `lambda` is only documentation (Sec. 2.4: general task arrival
  /// processes).
  Sampler interarrival;
  /// Task work requirement (mean 1.0 reproduces the paper's exponential
  /// task times with mean 1/nu_p at full speed).
  Sampler task_work = exponential_sampler(1.0);

  FailureStrategy strategy = FailureStrategy::kResumeBack;

  /// Shared repair facility (map/repair_facility.h semantics). 0 crews =
  /// the paper's unlimited independent repairs (legacy behaviour, RNG
  /// stream unchanged). With crews > 0, failed units queue FCFS for one
  /// of `repair_crews` crews, `spares` cold standby units fill emptied
  /// slots instantly, and a slot with no operational unit runs degraded
  /// at delta*nu_p until a repaired unit arrives.
  unsigned repair_crews = 0;
  unsigned spares = 0;

  /// Stop after this many completed UP/DOWN cycles (counted across all
  /// servers, after warm-up). The paper uses 2e5 cycles per run.
  std::size_t cycles = 20000;
  /// Cycles discarded before statistics collection starts.
  std::size_t warmup_cycles = 2000;

  std::uint64_t seed = 1;
  std::size_t histogram_cap = 4096;

  /// Deterministic fault-injection plan (empty by default). Scheduled
  /// events fire at exact simulated times, so runs stay reproducible per
  /// seed.
  FaultPlan faults;
  /// Watchdog budget; a tripped budget stops the run and returns partial
  /// statistics flagged as degraded instead of hanging (e.g. when a
  /// scenario makes the system unstable).
  SimBudget budget;

  /// Pause the run (instead of finishing) once the *cumulative* event
  /// count reaches this value, returning a resumable snapshot in
  /// ClusterSimResult::state. 0 disables pausing. On resume the counter
  /// keeps its old value, so raise (or zero) this before resuming.
  std::size_t pause_after_events = 0;
  /// Resume from a snapshot taken by a paused run instead of starting
  /// fresh. The config must otherwise be identical to the original run
  /// (same samplers, faults, topology) for the replay to be meaningful;
  /// the RNG stream continues from the snapshot, so an uninterrupted run
  /// and a paused-then-resumed run are bit-identical.
  std::shared_ptr<const ClusterSimState> resume_from;

  void validate() const;
};

/// Point estimates from one simulation run.
struct ClusterSimResult {
  double mean_queue_length = 0.0;  ///< time-average number in system
  double probability_empty = 0.0;
  TimeWeightedStats queue_stats{0};  ///< full time-weighted distribution
  SampleStats system_time;  ///< sojourn times of *completed* tasks
  /// Log-binned sojourn-time distribution of completed tasks, for
  /// delay-bound (QoS) tail estimates Pr(S > d).
  LogHistogram system_time_hist{1e-3, 1e7, 16};
  std::size_t arrivals = 0;
  std::size_t completed = 0;
  std::size_t discarded = 0;  ///< tasks dropped by the Discard strategy
  std::size_t cycles = 0;     ///< UP/DOWN cycles simulated after warm-up
  double sim_time = 0.0;      ///< simulated time after warm-up

  // Watchdog / fault-injection bookkeeping.
  bool degraded = false;      ///< a budget tripped; statistics are partial
  std::string degraded_reason;
  std::size_t events = 0;               ///< total events processed
  std::size_t injected_crashes = 0;     ///< servers hit by common-mode crashes
  std::size_t injected_arrivals = 0;    ///< tasks injected by bursts
  std::size_t repair_preemptions = 0;   ///< repairs that re-failed mid-repair

  // Repair-facility bookkeeping (zero in legacy unlimited-repair runs).
  std::size_t repairs_completed = 0;    ///< facility repair completions
  std::size_t spare_swaps = 0;          ///< failed slots refilled from spares
  std::size_t max_repair_backlog = 0;   ///< peak FCFS repair-queue length

  // Checkpoint / replay bookkeeping.
  bool paused = false;        ///< pause_after_events stopped the run early
  /// Snapshot to hand back via ClusterSimConfig::resume_from (set only
  /// when paused).
  std::shared_ptr<const ClusterSimState> state;
  /// RNG-stream position when the run ended (paused, degraded, or
  /// complete); persisted by the sweep runner so a replayed experiment
  /// can prove it consumed the identical stream.
  std::string final_rng_state;
};

/// One queued or in-service task inside a snapshot.
struct ClusterTaskState {
  double remaining = 0.0;
  double total = 0.0;
  double arrival = 0.0;
};

/// One server inside a snapshot.
struct ClusterServerState {
  bool up = true;
  double next_toggle = 0.0;
  double last_update = 0.0;
  bool busy = false;
  ClusterTaskState task;  ///< valid only when busy
};

/// Complete mid-run state of simulate_cluster at an event boundary:
/// the RNG stream, the event clock, every server and queued task, and
/// the statistics accumulated so far. A run resumed from this snapshot
/// replays the remaining trajectory bit-identically to an uninterrupted
/// run with the same config.
struct ClusterSimState {
  std::string rng_state;        ///< save_rng_state() of the engine
  double now = 0.0;
  double next_arrival = 0.0;
  double warm_start = 0.0;
  bool warm = false;
  std::size_t cycles_done = 0;  ///< includes warm-up cycles
  std::size_t crash_next = 0;   ///< consumed prefix of the crash schedule
  std::size_t burst_next = 0;   ///< consumed prefix of the burst schedule
  std::vector<ClusterServerState> servers;
  std::vector<ClusterTaskState> queue;  ///< FIFO order, front first

  // Repair-facility state (empty/zero in legacy unlimited-repair runs).
  std::vector<double> crew_done;  ///< per-crew completion time (inf = idle)
  std::size_t waiting = 0;        ///< failed units queued for a crew
  std::size_t spares_avail = 0;   ///< idle operational spares

  ClusterSimResult partial;     ///< counters and statistics so far
};

/// Run one simulation.
ClusterSimResult simulate_cluster(const ClusterSimConfig& config);

/// Run `replications` independent runs (seeds derived from config.seed)
/// and return all results.
std::vector<ClusterSimResult> replicate_cluster(const ClusterSimConfig& config,
                                                std::size_t replications);

/// Convenience: replication summary of the mean queue length.
ReplicationSummary mean_queue_length_summary(const ClusterSimConfig& config,
                                             std::size_t replications);

}  // namespace performa::sim
