#include "sim/random.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "linalg/errors.h"
#include "medist/sampler.h"

namespace performa::sim {

Sampler exponential_sampler(double rate) {
  PERFORMA_EXPECTS(rate > 0.0, "exponential_sampler: rate must be positive");
  return [rate](Rng& rng) {
    return std::exponential_distribution<double>(rate)(rng);
  };
}

Sampler exponential_sampler_mean(double mean) {
  PERFORMA_EXPECTS(mean > 0.0, "exponential_sampler_mean: mean > 0");
  return exponential_sampler(1.0 / mean);
}

Sampler me_sampler(const medist::MeDistribution& dist) {
  // Shared so copies of the Sampler stay cheap.
  auto phase_sampler = std::make_shared<medist::PhaseSampler>(dist);
  return [phase_sampler](Rng& rng) { return phase_sampler->sample(rng); };
}

Sampler deterministic_sampler(double value) {
  PERFORMA_EXPECTS(value >= 0.0, "deterministic_sampler: value must be >= 0");
  return [value](Rng&) { return value; };
}

Sampler lognormal_sampler(double mean, double scv) {
  PERFORMA_EXPECTS(mean > 0.0 && scv > 0.0,
                   "lognormal_sampler: mean and scv must be positive");
  // E[X] = exp(mu + s^2/2), Var/E^2 = exp(s^2) - 1.
  const double s2 = std::log(1.0 + scv);
  const double mu = std::log(mean) - 0.5 * s2;
  const double s = std::sqrt(s2);
  return [mu, s](Rng& rng) {
    return std::lognormal_distribution<double>(mu, s)(rng);
  };
}

Sampler bounded_pareto_sampler(double alpha, double x_min, double x_max) {
  PERFORMA_EXPECTS(alpha > 0.0, "bounded_pareto_sampler: alpha > 0");
  PERFORMA_EXPECTS(0.0 < x_min && x_min < x_max,
                   "bounded_pareto_sampler: need 0 < x_min < x_max");
  const double lo = std::pow(x_min, -alpha);
  const double hi = std::pow(x_max, -alpha);
  return [alpha, lo, hi](Rng& rng) {
    const double u = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    return std::pow(lo - u * (lo - hi), -1.0 / alpha);
  };
}

std::string save_rng_state(const Rng& rng) {
  std::ostringstream out;
  out << rng;
  return out.str();
}

Rng restore_rng_state(const std::string& state) {
  Rng rng;
  std::istringstream in(state);
  in >> rng;
  PERFORMA_EXPECTS(!in.fail(),
                   "restore_rng_state: malformed or truncated engine state");
  // A complete state leaves nothing but whitespace behind; trailing junk
  // means the string was never produced by save_rng_state.
  std::string rest;
  in >> rest;
  PERFORMA_EXPECTS(rest.empty(),
                   "restore_rng_state: trailing garbage after engine state");
  return rng;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  // splitmix64 of (base + golden-ratio * (stream+1)).
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace performa::sim
