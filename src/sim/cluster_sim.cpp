#include "sim/cluster_sim.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <optional>

#include "linalg/errors.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace performa::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Task {
  double remaining = 0.0;  // work left (speed-1 units)
  double total = 0.0;      // original work (Restart resets to this)
  double arrival = 0.0;    // arrival time (for system-time statistics)
};

struct Server {
  bool up = true;
  double next_toggle = kInf;  // absolute time of the next UP/DOWN switch
  std::optional<Task> task;
  double last_update = 0.0;   // time at which task->remaining was current

  double speed(double nu_p, double delta) const noexcept {
    return up ? nu_p : delta * nu_p;
  }
};

// Kinds of events the loop races; faults are first-class events so
// injection happens at exact simulated times (deterministic per seed).
enum class Event { kArrival, kToggle, kCompletion, kRepairDone, kCrash, kBurst };

}  // namespace

const char* to_string(FailureStrategy s) noexcept {
  switch (s) {
    case FailureStrategy::kDiscard:
      return "Discard";
    case FailureStrategy::kRestartFront:
      return "Restart(front)";
    case FailureStrategy::kRestartBack:
      return "Restart(back)";
    case FailureStrategy::kResumeFront:
      return "Resume(front)";
    case FailureStrategy::kResumeBack:
      return "Resume(back)";
  }
  return "?";
}

void ClusterSimConfig::validate() const {
  PERFORMA_EXPECTS(n_servers >= 1, "ClusterSimConfig: n_servers >= 1");
  PERFORMA_EXPECTS(nu_p > 0.0, "ClusterSimConfig: nu_p > 0");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "ClusterSimConfig: delta in [0,1]");
  PERFORMA_EXPECTS(lambda > 0.0, "ClusterSimConfig: lambda > 0");
  PERFORMA_EXPECTS(static_cast<bool>(up) && static_cast<bool>(down) &&
                       static_cast<bool>(task_work),
                   "ClusterSimConfig: samplers must be set");
  PERFORMA_EXPECTS(cycles > 0, "ClusterSimConfig: cycles > 0");
  PERFORMA_EXPECTS(spares == 0 || repair_crews > 0,
                   "ClusterSimConfig: spares require a repair facility "
                   "(repair_crews > 0)");
  if (resume_from) {
    PERFORMA_EXPECTS(resume_from->servers.size() == n_servers,
                     "ClusterSimConfig: resume snapshot was taken with a "
                     "different number of servers");
    PERFORMA_EXPECTS(resume_from->crew_done.size() == repair_crews,
                     "ClusterSimConfig: resume snapshot was taken with a "
                     "different repair-crew count");
  }
  faults.validate();
}

ClusterSimResult simulate_cluster(const ClusterSimConfig& config) {
  obs::Span span("sim.cluster.run");
  config.validate();
  const bool resuming = config.resume_from != nullptr;
  Rng rng = resuming ? restore_rng_state(config.resume_from->rng_state)
                     : Rng(config.seed);
  const auto wall_start = std::chrono::steady_clock::now();

  const unsigned n = config.n_servers;
  const bool crash = config.delta == 0.0;

  // Sampler outputs cross a stage boundary here: a NaN or negative
  // duration would silently corrupt the event clock, so reject it with a
  // typed error at the draw site. (+inf is allowed for task work only --
  // that is the documented infinite-work degenerate scenario.)
  auto draw_duration = [&rng](const Sampler& s, const char* what) {
    const double v = s(rng);
    if (std::isnan(v) || v < 0.0 || v == kInf) {
      throw NonFiniteError(
          std::string("simulate_cluster: sampler produced an invalid "
                      "duration for ") +
          what);
    }
    return v;
  };
  auto draw_work = [&rng, &config]() {
    const double v = config.task_work(rng);
    if (std::isnan(v) || v < 0.0) {
      throw NonFiniteError(
          "simulate_cluster: task_work sampler produced NaN or a negative "
          "amount of work");
    }
    return v;
  };
  auto draw_repair = [&](void) {
    if (config.faults.zero_length_repairs) return 0.0;
    return draw_duration(config.down, "repair (down) duration");
  };

  std::vector<Server> servers(n);
  std::deque<Task> queue;
  double now = 0.0;
  auto draw_interarrival = [&]() {
    if (config.interarrival) {
      return draw_duration(config.interarrival, "interarrival time");
    }
    return std::exponential_distribution<double>(config.lambda)(rng);
  };
  double next_arrival = 0.0;

  // Shared repair facility (crews == 0: legacy independent repairs; the
  // facility code paths then never draw from the RNG, keeping legacy
  // streams bit-identical).
  const bool facility = config.repair_crews > 0;
  std::vector<double> crew_done(config.repair_crews, kInf);
  std::size_t waiting = 0;
  std::size_t spares_avail = facility ? config.spares : 0;

  ClusterSimResult result;
  result.queue_stats = TimeWeightedStats(config.histogram_cap);
  TimeWeightedStats& stats = result.queue_stats;

  std::size_t cycles_done = 0;  // completed DOWN->UP transitions
  bool warm = config.warmup_cycles == 0;
  double warm_start = 0.0;

  // Scheduled fault events, sorted by time and consumed front-to-back.
  std::vector<CommonModeCrash> crashes = config.faults.crashes;
  std::vector<ArrivalBurst> bursts = config.faults.bursts;
  std::sort(crashes.begin(), crashes.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  std::sort(bursts.begin(), bursts.end(),
            [](const auto& a, const auto& b) { return a.time < b.time; });
  std::size_t crash_next = 0;
  std::size_t burst_next = 0;

  if (resuming) {
    // Restore every piece of loop state from the snapshot; the RNG was
    // already restored above, so the replay continues the exact stream.
    const ClusterSimState& st = *config.resume_from;
    result = st.partial;
    result.paused = false;
    result.state.reset();
    result.degraded = false;
    result.degraded_reason.clear();
    result.final_rng_state.clear();
    now = st.now;
    next_arrival = st.next_arrival;
    warm = st.warm;
    warm_start = st.warm_start;
    cycles_done = st.cycles_done;
    crash_next = st.crash_next;
    burst_next = st.burst_next;
    for (unsigned i = 0; i < n; ++i) {
      const ClusterServerState& ss = st.servers[i];
      servers[i].up = ss.up;
      servers[i].next_toggle = ss.next_toggle;
      servers[i].last_update = ss.last_update;
      if (ss.busy) {
        servers[i].task = Task{ss.task.remaining, ss.task.total,
                               ss.task.arrival};
      }
    }
    for (const ClusterTaskState& ts : st.queue) {
      queue.push_back(Task{ts.remaining, ts.total, ts.arrival});
    }
    crew_done = st.crew_done;  // size validated against repair_crews
    waiting = st.waiting;
    spares_avail = st.spares_avail;
  } else {
    for (Server& s : servers) {
      s.next_toggle = draw_duration(config.up, "uptime (TTF)");
    }
    next_arrival = draw_interarrival();
  }

  // Snapshot the complete loop state at an event boundary; resuming from
  // it replays the remaining trajectory bit-identically.
  auto snapshot = [&]() {
    auto st = std::make_shared<ClusterSimState>();
    st->rng_state = save_rng_state(rng);
    st->now = now;
    st->next_arrival = next_arrival;
    st->warm = warm;
    st->warm_start = warm_start;
    st->cycles_done = cycles_done;
    st->crash_next = crash_next;
    st->burst_next = burst_next;
    st->servers.reserve(n);
    for (const Server& s : servers) {
      ClusterServerState ss;
      ss.up = s.up;
      ss.next_toggle = s.next_toggle;
      ss.last_update = s.last_update;
      ss.busy = s.task.has_value();
      if (s.task) ss.task = {s.task->remaining, s.task->total, s.task->arrival};
      st->servers.push_back(ss);
    }
    st->queue.reserve(queue.size());
    for (const Task& t : queue) {
      st->queue.push_back({t.remaining, t.total, t.arrival});
    }
    st->crew_done = crew_done;
    st->waiting = waiting;
    st->spares_avail = spares_avail;
    st->partial = result;       // counters + statistics so far
    st->partial.state.reset();  // snapshots never nest
    st->partial.paused = false;
    return st;
  };

  // A server can serve iff UP, or DOWN with nonzero degraded speed.
  auto can_serve = [&](const Server& s) { return s.up || !crash; };

  // Refresh remaining work to `now` (the speed was constant since
  // last_update because every speed change routes through here).
  auto advance = [&](Server& s) {
    if (s.task) {
      s.task->remaining -= (now - s.last_update) * s.speed(config.nu_p,
                                                           config.delta);
      if (s.task->remaining < 0.0) s.task->remaining = 0.0;
    }
    s.last_update = now;
  };

  auto start_next = [&](Server& s) {
    if (!queue.empty() && can_serve(s)) {
      s.task = queue.front();
      queue.pop_front();
      s.last_update = now;
    }
  };

  auto level = [&]() {
    std::size_t busy = 0;
    for (const Server& s : servers) busy += s.task.has_value() ? 1 : 0;
    return queue.size() + busy;
  };

  auto completion_time = [&](const Server& s) {
    if (!s.task) return kInf;
    const double speed = s.speed(config.nu_p, config.delta);
    if (speed <= 0.0) return kInf;
    if (s.task->remaining == kInf) return kInf;  // infinite-work scenario
    return s.last_update + s.task->remaining / speed;
  };

  // A failed unit enters the shop: a free crew starts repair immediately,
  // otherwise it joins the FCFS backlog.
  auto shop_admit = [&]() {
    for (double& cd : crew_done) {
      if (cd == kInf) {
        cd = now + draw_repair();
        return;
      }
    }
    ++waiting;
    result.max_repair_backlog = std::max(result.max_repair_backlog, waiting);
  };

  // Install an operational unit into slot s (fresh TTF clock).
  auto install_unit = [&](Server& s) {
    advance(s);
    s.up = true;
    s.next_toggle = now + draw_duration(config.up, "uptime (TTF)");
  };

  // UP -> DOWN transition of one server, shared by the renewal process
  // and by injected common-mode crashes.
  auto fail_server = [&](Server& s) {
    advance(s);
    s.up = false;
    if (facility) {
      s.next_toggle = kInf;  // recovery comes from the shop, not a clock
      shop_admit();
    } else {
      s.next_toggle = now + draw_repair();
    }
    if (s.task && crash) {
      Task t = *s.task;
      s.task.reset();
      switch (config.strategy) {
        case FailureStrategy::kDiscard:
          if (warm) ++result.discarded;
          break;
        case FailureStrategy::kRestartFront:
          t.remaining = t.total;
          queue.push_front(t);
          break;
        case FailureStrategy::kRestartBack:
          t.remaining = t.total;
          queue.push_back(t);
          break;
        case FailureStrategy::kResumeFront:
          queue.push_front(t);
          break;
        case FailureStrategy::kResumeBack:
          queue.push_back(t);
          break;
      }
    }
    // delta > 0: the task (if any) keeps running at degraded speed.
    if (facility && spares_avail > 0) {
      // Instant swap from the cold spares pool: the slot is operational
      // again before any degraded time accrues.
      --spares_avail;
      ++result.spare_swaps;
      install_unit(s);
      if (!s.task) start_next(s);
    }
  };

  // Dispatch a freshly arrived task: prefer an idle UP server; fall back
  // to an idle degraded server; otherwise queue.
  auto dispatch = [&](const Task& t) {
    Server* target = nullptr;
    for (Server& s : servers) {
      if (!s.task && s.up) {
        target = &s;
        break;
      }
    }
    if (!target && !crash) {
      for (Server& s : servers) {
        if (!s.task && !s.up) {
          target = &s;
          break;
        }
      }
    }
    if (target) {
      target->task = t;
      target->last_update = now;
    } else {
      queue.push_back(t);
    }
  };

  // Degenerate scenario: an infinite-work task pins one server forever
  // (its completion time is +inf by construction). Already part of the
  // snapshot when resuming.
  if (config.faults.infinite_first_task && !resuming) {
    Task t;
    t.remaining = t.total = kInf;
    t.arrival = 0.0;
    ++result.injected_arrivals;
    dispatch(t);
  }

  // Watchdog: trips on any exhausted budget. The wall clock is sampled
  // every 1024 events to keep the steady_clock reads off the hot path.
  auto budget_tripped = [&]() -> const char* {
    const SimBudget& b = config.budget;
    if (b.max_events != 0 && result.events >= b.max_events) {
      return "event budget exhausted";
    }
    if (b.max_sim_time != 0.0 && now >= b.max_sim_time) {
      return "simulated-time budget exhausted";
    }
    if (b.max_wall_seconds != 0.0 && result.events % 1024 == 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - wall_start;
      if (elapsed.count() >= b.max_wall_seconds) {
        return "wall-clock budget exhausted";
      }
    }
    return nullptr;
  };

  const std::size_t total_cycles = config.warmup_cycles + config.cycles;
  while (cycles_done < total_cycles) {
    // Pause (checked before the budget so a paused run is never marked
    // degraded) at an event boundary: nothing is half-processed, so the
    // snapshot plus the remaining config replays the rest bit-exactly.
    if (config.pause_after_events != 0 &&
        result.events >= config.pause_after_events) {
      result.paused = true;
      break;
    }
    if (const char* reason = budget_tripped()) {
      result.degraded = true;
      result.degraded_reason = reason;
      break;
    }
    ++result.events;

    // Next event: arrival, earliest toggle, earliest completion, or a
    // scheduled fault. Ties resolve in favour of the fault events (they
    // are checked last with <=-style priority via strict < on t_next),
    // i.e. a crash scheduled exactly at an arrival instant fires first
    // only if strictly earlier; simultaneous events execute in the fixed
    // order the selection below encodes, keeping runs reproducible.
    double t_next = next_arrival;
    Event ev = Event::kArrival;
    int idx = -1;
    for (unsigned i = 0; i < n; ++i) {
      if (servers[i].next_toggle < t_next) {
        t_next = servers[i].next_toggle;
        ev = Event::kToggle;
        idx = static_cast<int>(i);
      }
      const double tc = completion_time(servers[i]);
      if (tc < t_next) {
        t_next = tc;
        ev = Event::kCompletion;
        idx = static_cast<int>(i);
      }
    }
    for (std::size_t j = 0; j < crew_done.size(); ++j) {
      if (crew_done[j] < t_next) {
        t_next = crew_done[j];
        ev = Event::kRepairDone;
        idx = static_cast<int>(j);
      }
    }
    if (crash_next < crashes.size()) {
      // A fault scheduled in the past (before the loop advanced to it)
      // fires immediately.
      const double tf = std::max(crashes[crash_next].time, now);
      if (tf < t_next) {
        t_next = tf;
        ev = Event::kCrash;
      }
    }
    if (burst_next < bursts.size()) {
      const double tf = std::max(bursts[burst_next].time, now);
      if (tf < t_next) {
        t_next = tf;
        ev = Event::kBurst;
      }
    }

    if (warm) stats.add(level(), t_next - now);
    now = t_next;

    switch (ev) {
      case Event::kCompletion: {
        Server& s = servers[static_cast<std::size_t>(idx)];
        advance(s);
        if (warm) {
          ++result.completed;
          result.system_time.add(now - s.task->arrival);
          result.system_time_hist.add(now - s.task->arrival);
        }
        s.task.reset();
        start_next(s);
        break;
      }
      case Event::kToggle: {
        Server& s = servers[static_cast<std::size_t>(idx)];
        if (s.up) {
          fail_server(s);
        } else {
          // Repair completes -- unless the re-failure fault preempts it
          // and the repair starts over (drawn only when the scenario is
          // active, so fault-free runs keep their RNG stream unchanged).
          if (config.faults.repair_preemption > 0.0 &&
              std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
                  config.faults.repair_preemption) {
            advance(s);
            s.next_toggle = now + draw_repair();
            ++result.repair_preemptions;
            break;
          }
          advance(s);
          s.up = true;
          s.next_toggle = now + draw_duration(config.up, "uptime (TTF)");
          ++cycles_done;
          if (!warm && cycles_done >= config.warmup_cycles) {
            warm = true;
            warm_start = now;
            stats.reset();
            // Counters start from zero after warm-up by construction.
          }
          if (!s.task) start_next(s);
        }
        break;
      }
      case Event::kRepairDone: {
        double& cd = crew_done[static_cast<std::size_t>(idx)];
        // The re-failure fault preempts the completion and the repair
        // starts over (same scenario semantics as the legacy toggle path).
        if (config.faults.repair_preemption > 0.0 &&
            std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
                config.faults.repair_preemption) {
          cd = now + draw_repair();
          ++result.repair_preemptions;
          break;
        }
        ++result.repairs_completed;
        // The freed crew pulls the next waiting unit, FCFS.
        if (waiting > 0) {
          --waiting;
          cd = now + draw_repair();
        } else {
          cd = kInf;
        }
        // The repaired unit activates into a degraded slot if any,
        // otherwise it joins the cold spares pool.
        Server* slot = nullptr;
        for (Server& s : servers) {
          if (!s.up) {
            slot = &s;
            break;
          }
        }
        if (slot) {
          install_unit(*slot);
          if (!slot->task) start_next(*slot);
        } else {
          ++spares_avail;
        }
        // A facility repair completion is the cycle unit here (the
        // DOWN -> UP analogue of the legacy toggle path).
        ++cycles_done;
        if (!warm && cycles_done >= config.warmup_cycles) {
          warm = true;
          warm_start = now;
          stats.reset();
        }
        break;
      }
      case Event::kCrash: {
        // Correlated common-mode crash: take down up to k currently-UP
        // servers at one instant.
        unsigned remaining = crashes[crash_next].servers;
        ++crash_next;
        for (Server& s : servers) {
          if (remaining == 0) break;
          if (!s.up) continue;
          fail_server(s);
          --remaining;
          ++result.injected_crashes;
        }
        break;
      }
      case Event::kBurst: {
        const std::size_t count = bursts[burst_next].count;
        ++burst_next;
        for (std::size_t k = 0; k < count; ++k) {
          Task t;
          t.remaining = t.total = draw_work();
          t.arrival = now;
          ++result.injected_arrivals;
          if (warm) ++result.arrivals;
          dispatch(t);
        }
        break;
      }
      case Event::kArrival: {
        Task t;
        t.remaining = t.total = draw_work();
        t.arrival = now;
        if (warm) ++result.arrivals;
        next_arrival = now + draw_interarrival();
        dispatch(t);
        break;
      }
    }
  }

  result.cycles = cycles_done > config.warmup_cycles
                      ? cycles_done - config.warmup_cycles
                      : 0;
  result.sim_time = warm ? now - warm_start : 0.0;
  // A degraded run can end before any post-warm-up time accumulates;
  // partial statistics must not throw on the way out.
  if (stats.total_time() > 0.0) {
    result.mean_queue_length = stats.mean();
    result.probability_empty = stats.pmf(0);
  }
  result.final_rng_state = save_rng_state(rng);
  if (result.paused) result.state = snapshot();

  // Observability is batch-added here, off the event loop: the hot path
  // above pays nothing for it. Counters are cumulative across runs in
  // this process; the span carries this run's own totals.
  {
    static obs::Counter& events = obs::counter("sim.cluster.events");
    static obs::Counter& cycles = obs::counter("sim.cluster.cycles");
    static obs::Counter& crashes = obs::counter("sim.fault.crashes");
    static obs::Counter& arrivals = obs::counter("sim.fault.arrivals");
    static obs::Counter& preempts = obs::counter("sim.fault.preemptions");
    static obs::Counter& runs_degraded = obs::counter("sim.runs.degraded");
    events.add(result.events);
    cycles.add(result.cycles);
    crashes.add(result.injected_crashes);
    arrivals.add(result.injected_arrivals);
    preempts.add(result.repair_preemptions);
    if (result.degraded) runs_degraded.add();
    span.annotate("events", static_cast<std::uint64_t>(result.events));
    span.annotate("cycles", static_cast<std::uint64_t>(result.cycles));
    if (result.degraded) span.annotate("degraded", result.degraded_reason);
    if (result.paused) span.annotate("paused", 1.0);
  }
  return result;
}

std::vector<ClusterSimResult> replicate_cluster(const ClusterSimConfig& config,
                                                std::size_t replications) {
  PERFORMA_EXPECTS(replications >= 1, "replicate_cluster: replications >= 1");
  std::vector<ClusterSimResult> results;
  results.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    ClusterSimConfig run = config;
    run.seed = derive_seed(config.seed, r);
    results.push_back(simulate_cluster(run));
  }
  return results;
}

ReplicationSummary mean_queue_length_summary(const ClusterSimConfig& config,
                                             std::size_t replications) {
  const auto results = replicate_cluster(config, replications);
  std::vector<double> means;
  means.reserve(results.size());
  for (const auto& r : results) means.push_back(r.mean_queue_length);
  return summarize_replications(means);
}

}  // namespace performa::sim
