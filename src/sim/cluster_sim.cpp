#include "sim/cluster_sim.h"

#include <deque>
#include <limits>
#include <optional>

#include "linalg/errors.h"

namespace performa::sim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Task {
  double remaining = 0.0;  // work left (speed-1 units)
  double total = 0.0;      // original work (Restart resets to this)
  double arrival = 0.0;    // arrival time (for system-time statistics)
};

struct Server {
  bool up = true;
  double next_toggle = kInf;  // absolute time of the next UP/DOWN switch
  std::optional<Task> task;
  double last_update = 0.0;   // time at which task->remaining was current

  double speed(double nu_p, double delta) const noexcept {
    return up ? nu_p : delta * nu_p;
  }
};

}  // namespace

const char* to_string(FailureStrategy s) noexcept {
  switch (s) {
    case FailureStrategy::kDiscard:
      return "Discard";
    case FailureStrategy::kRestartFront:
      return "Restart(front)";
    case FailureStrategy::kRestartBack:
      return "Restart(back)";
    case FailureStrategy::kResumeFront:
      return "Resume(front)";
    case FailureStrategy::kResumeBack:
      return "Resume(back)";
  }
  return "?";
}

void ClusterSimConfig::validate() const {
  PERFORMA_EXPECTS(n_servers >= 1, "ClusterSimConfig: n_servers >= 1");
  PERFORMA_EXPECTS(nu_p > 0.0, "ClusterSimConfig: nu_p > 0");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "ClusterSimConfig: delta in [0,1]");
  PERFORMA_EXPECTS(lambda > 0.0, "ClusterSimConfig: lambda > 0");
  PERFORMA_EXPECTS(static_cast<bool>(up) && static_cast<bool>(down) &&
                       static_cast<bool>(task_work),
                   "ClusterSimConfig: samplers must be set");
  PERFORMA_EXPECTS(cycles > 0, "ClusterSimConfig: cycles > 0");
}

ClusterSimResult simulate_cluster(const ClusterSimConfig& config) {
  config.validate();
  Rng rng(config.seed);

  const unsigned n = config.n_servers;
  const bool crash = config.delta == 0.0;

  std::vector<Server> servers(n);
  for (Server& s : servers) s.next_toggle = config.up(rng);

  std::deque<Task> queue;
  double now = 0.0;
  auto draw_interarrival = [&config, &rng]() {
    if (config.interarrival) return config.interarrival(rng);
    return std::exponential_distribution<double>(config.lambda)(rng);
  };
  double next_arrival = draw_interarrival();

  ClusterSimResult result;
  result.queue_stats = TimeWeightedStats(config.histogram_cap);
  TimeWeightedStats& stats = result.queue_stats;

  std::size_t cycles_done = 0;  // completed DOWN->UP transitions
  bool warm = config.warmup_cycles == 0;
  double warm_start = 0.0;

  // A server can serve iff UP, or DOWN with nonzero degraded speed.
  auto can_serve = [&](const Server& s) { return s.up || !crash; };

  // Refresh remaining work to `now` (the speed was constant since
  // last_update because every speed change routes through here).
  auto advance = [&](Server& s) {
    if (s.task) {
      s.task->remaining -= (now - s.last_update) * s.speed(config.nu_p,
                                                           config.delta);
      if (s.task->remaining < 0.0) s.task->remaining = 0.0;
    }
    s.last_update = now;
  };

  auto start_next = [&](Server& s) {
    if (!queue.empty() && can_serve(s)) {
      s.task = queue.front();
      queue.pop_front();
      s.last_update = now;
    }
  };

  auto level = [&]() {
    std::size_t busy = 0;
    for (const Server& s : servers) busy += s.task.has_value() ? 1 : 0;
    return queue.size() + busy;
  };

  auto completion_time = [&](const Server& s) {
    if (!s.task) return kInf;
    const double speed = s.speed(config.nu_p, config.delta);
    if (speed <= 0.0) return kInf;
    return s.last_update + s.task->remaining / speed;
  };

  const std::size_t total_cycles = config.warmup_cycles + config.cycles;
  while (cycles_done < total_cycles) {
    // Next event: arrival, earliest toggle, earliest completion.
    double t_next = next_arrival;
    int toggle_idx = -1;
    int complete_idx = -1;
    for (unsigned i = 0; i < n; ++i) {
      if (servers[i].next_toggle < t_next) {
        t_next = servers[i].next_toggle;
        toggle_idx = static_cast<int>(i);
        complete_idx = -1;
      }
      const double tc = completion_time(servers[i]);
      if (tc < t_next) {
        t_next = tc;
        complete_idx = static_cast<int>(i);
        toggle_idx = -1;
      }
    }

    if (warm) stats.add(level(), t_next - now);
    now = t_next;

    if (complete_idx >= 0) {
      Server& s = servers[static_cast<std::size_t>(complete_idx)];
      advance(s);
      if (warm) {
        ++result.completed;
        result.system_time.add(now - s.task->arrival);
        result.system_time_hist.add(now - s.task->arrival);
      }
      s.task.reset();
      start_next(s);
    } else if (toggle_idx >= 0) {
      Server& s = servers[static_cast<std::size_t>(toggle_idx)];
      advance(s);
      if (s.up) {
        // UP -> DOWN.
        s.up = false;
        s.next_toggle = now + config.down(rng);
        if (s.task && crash) {
          Task t = *s.task;
          s.task.reset();
          switch (config.strategy) {
            case FailureStrategy::kDiscard:
              if (warm) ++result.discarded;
              break;
            case FailureStrategy::kRestartFront:
              t.remaining = t.total;
              queue.push_front(t);
              break;
            case FailureStrategy::kRestartBack:
              t.remaining = t.total;
              queue.push_back(t);
              break;
            case FailureStrategy::kResumeFront:
              queue.push_front(t);
              break;
            case FailureStrategy::kResumeBack:
              queue.push_back(t);
              break;
          }
        }
        // delta > 0: the task (if any) keeps running at degraded speed.
      } else {
        // DOWN -> UP: repair completes.
        s.up = true;
        s.next_toggle = now + config.up(rng);
        ++cycles_done;
        if (!warm && cycles_done >= config.warmup_cycles) {
          warm = true;
          warm_start = now;
          stats.reset();
          // Counters start from zero after warm-up by construction.
        }
        if (!s.task) start_next(s);
      }
      // Re-dispatch: the speed change may free capacity for queued tasks
      // (e.g. a repaired idle server) -- handled above via start_next.
    } else {
      // Arrival.
      Task t;
      t.remaining = t.total = config.task_work(rng);
      t.arrival = now;
      if (warm) ++result.arrivals;
      next_arrival = now + draw_interarrival();
      // Prefer an idle UP server; fall back to an idle degraded server.
      Server* target = nullptr;
      for (Server& s : servers) {
        if (!s.task && s.up) {
          target = &s;
          break;
        }
      }
      if (!target && !crash) {
        for (Server& s : servers) {
          if (!s.task && !s.up) {
            target = &s;
            break;
          }
        }
      }
      if (target) {
        target->task = t;
        target->last_update = now;
      } else {
        queue.push_back(t);
      }
    }
  }

  result.cycles = cycles_done - config.warmup_cycles;
  result.sim_time = now - warm_start;
  result.mean_queue_length = stats.mean();
  result.probability_empty = stats.pmf(0);
  return result;
}

std::vector<ClusterSimResult> replicate_cluster(const ClusterSimConfig& config,
                                                std::size_t replications) {
  PERFORMA_EXPECTS(replications >= 1, "replicate_cluster: replications >= 1");
  std::vector<ClusterSimResult> results;
  results.reserve(replications);
  for (std::size_t r = 0; r < replications; ++r) {
    ClusterSimConfig run = config;
    run.seed = derive_seed(config.seed, r);
    results.push_back(simulate_cluster(run));
  }
  return results;
}

ReplicationSummary mean_queue_length_summary(const ClusterSimConfig& config,
                                             std::size_t replications) {
  const auto results = replicate_cluster(config, replications);
  std::vector<double> means;
  means.reserve(results.size());
  for (const auto& r : results) means.push_back(r.mean_queue_length);
  return summarize_replications(means);
}

}  // namespace performa::sim
