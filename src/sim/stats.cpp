#include "sim/stats.h"

#include <algorithm>
#include <cmath>

#include "linalg/errors.h"

namespace performa::sim {

void SampleStats::add(double x) {
  if (!std::isfinite(x)) {
    throw NonFiniteError("SampleStats::add: non-finite sample");
  }
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_.value();
  mean_.add(delta / static_cast<double>(count_));
  m2_.add(delta * (x - mean_.value()));
}

double SampleStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_.value() / static_cast<double>(count_ - 1);
}

double SampleStats::stddev() const noexcept { return std::sqrt(variance()); }

TimeWeightedStats::TimeWeightedStats(std::size_t histogram_cap)
    : histogram_(histogram_cap + 1, 0.0) {}

void TimeWeightedStats::add(std::size_t level, double duration) {
  if (!std::isfinite(duration)) {
    throw NonFiniteError("TimeWeightedStats::add: non-finite duration");
  }
  PERFORMA_EXPECTS(duration >= 0.0, "TimeWeightedStats: negative duration");
  if (duration == 0.0) return;
  histogram_[std::min(level, histogram_.size() - 1)] += duration;
  weighted_sum_.add(static_cast<double>(level) * duration);
  total_time_.add(duration);
}

void TimeWeightedStats::reset() noexcept {
  std::fill(histogram_.begin(), histogram_.end(), 0.0);
  weighted_sum_.reset();
  total_time_.reset();
}

double TimeWeightedStats::mean() const {
  PERFORMA_EXPECTS(total_time() > 0.0, "TimeWeightedStats: no time recorded");
  return weighted_sum_.value() / total_time();
}

double TimeWeightedStats::pmf(std::size_t level) const {
  PERFORMA_EXPECTS(total_time() > 0.0, "TimeWeightedStats: no time recorded");
  if (level >= histogram_.size()) return 0.0;
  return histogram_[level] / total_time();
}

double TimeWeightedStats::tail(std::size_t level) const {
  PERFORMA_EXPECTS(total_time() > 0.0, "TimeWeightedStats: no time recorded");
  // The tail sums many near-equal bucket durations; compensation keeps
  // the bin count out of the error term.
  const std::size_t from = std::min(level, histogram_.size() - 1);
  return linalg::sum_compensated(histogram_.data() + from,
                                 histogram_.size() - from) /
         total_time();
}

double t_quantile_95(std::size_t dof) noexcept {
  // Two-sided 95% (i.e. 0.975 one-sided) quantiles, dof 1..30.
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (dof == 0) return 0.0;
  if (dof <= 30) return kTable[dof - 1];
  return 1.96;
}

LogHistogram::LogHistogram(double min_value, double max_value,
                           std::size_t bins_per_decade) {
  PERFORMA_EXPECTS(0.0 < min_value && min_value < max_value,
                   "LogHistogram: need 0 < min_value < max_value");
  PERFORMA_EXPECTS(bins_per_decade >= 1, "LogHistogram: bins_per_decade >= 1");
  log_min_ = std::log10(min_value);
  log_step_ = 1.0 / static_cast<double>(bins_per_decade);
  const double decades = std::log10(max_value) - log_min_;
  n_bins_ = static_cast<std::size_t>(std::ceil(decades * bins_per_decade));
  counts_.assign(n_bins_ + 2, 0);  // [0]=underflow, [n_bins_+1]=overflow
}

std::size_t LogHistogram::bin_of(double x) const {
  if (x <= 0.0) return 0;
  const double pos = (std::log10(x) - log_min_) / log_step_;
  if (pos < 0.0) return 0;
  const auto idx = static_cast<std::size_t>(pos);
  if (idx >= n_bins_) return n_bins_ + 1;
  return idx + 1;
}

double LogHistogram::edge(std::size_t bin) const {
  // Lower edge of bin i (1-based interior bins).
  return std::pow(10.0, log_min_ + static_cast<double>(bin - 1) * log_step_);
}

void LogHistogram::add(double x) {
  if (std::isnan(x)) {
    throw NonFiniteError("LogHistogram::add: NaN sample");
  }
  PERFORMA_EXPECTS(x >= 0.0, "LogHistogram: negative sample");
  ++counts_[bin_of(x)];
  ++count_;
}

double LogHistogram::tail(double x) const {
  if (count_ == 0) return 0.0;
  const std::size_t from = bin_of(x);
  std::size_t above = 0;
  // Count bins whose range lies fully above x: start after x's bin.
  for (std::size_t b = from + 1; b < counts_.size(); ++b) above += counts_[b];
  return static_cast<double>(above) / static_cast<double>(count_);
}

double LogHistogram::quantile_upper(double eps) const {
  if (count_ == 0) {
    throw NumericalError("LogHistogram::quantile_upper: no samples");
  }
  std::size_t above = 0;
  for (std::size_t b = counts_.size(); b-- > 1;) {
    above += counts_[b];
    if (static_cast<double>(above) / static_cast<double>(count_) > eps) {
      // Bin b is the first (from the top) pushing the tail beyond eps.
      const std::size_t next = std::min(b + 1, n_bins_ + 1);
      return edge(next);
    }
  }
  return edge(1);
}

BatchMeans::BatchMeans(std::size_t n_batches) : n_batches_(n_batches) {
  PERFORMA_EXPECTS(n_batches >= 2, "BatchMeans: need at least 2 batches");
}

void BatchMeans::add(double level, double duration) {
  if (!std::isfinite(level) || !std::isfinite(duration)) {
    throw NonFiniteError("BatchMeans::add: non-finite level or duration");
  }
  PERFORMA_EXPECTS(duration >= 0.0, "BatchMeans: negative duration");
  while (duration > 0.0) {
    const double room = batch_duration_ - current_time_.value();
    const double take = std::min(room, duration);
    current_sum_.add(level * take);
    current_time_.add(take);
    duration -= take;
    if (current_time_.value() >= batch_duration_) close_batch();
  }
}

void BatchMeans::close_batch() {
  means_.push_back(current_sum_.value() / current_time_.value());
  current_sum_.reset();
  current_time_.reset();
  if (means_.size() >= 2 * n_batches_) {
    // Merge adjacent pairs (equal durations, so plain averages) and
    // double the batch length: keeps memory O(n_batches) while the run
    // grows unboundedly.
    std::vector<double> merged;
    merged.reserve(n_batches_);
    for (std::size_t i = 0; i + 1 < means_.size(); i += 2) {
      merged.push_back(0.5 * (means_[i] + means_[i + 1]));
    }
    means_ = std::move(merged);
    batch_duration_ *= 2.0;
  }
}

std::size_t BatchMeans::complete_batches() const noexcept {
  return means_.size();
}

ReplicationSummary BatchMeans::summary() const {
  if (means_.size() < 2) {
    throw NumericalError(
        "BatchMeans::summary: fewer than 2 complete batches");
  }
  return summarize_replications(means_);
}

ReplicationSummary summarize_replications(const std::vector<double>& values) {
  PERFORMA_EXPECTS(!values.empty(),
                   "summarize_replications: need at least one replication");
  SampleStats stats;
  for (double v : values) stats.add(v);
  ReplicationSummary out;
  out.replications = values.size();
  out.mean = stats.mean();
  out.stddev = stats.stddev();
  if (values.size() >= 2) {
    out.ci_halfwidth = t_quantile_95(values.size() - 1) * stats.stddev() /
                       std::sqrt(static_cast<double>(values.size()));
  }
  return out;
}

}  // namespace performa::sim
