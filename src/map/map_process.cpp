#include "map/map_process.h"

#include <cmath>
#include <utility>

#include "linalg/ctmc.h"
#include "linalg/kron.h"
#include "linalg/lu.h"

namespace performa::map {

Map::Map(Matrix d0, Matrix d1) : d0_(std::move(d0)), d1_(std::move(d1)) {
  PERFORMA_EXPECTS(d0_.is_square() && !d0_.empty(),
                   "Map: D0 must be square and nonempty");
  PERFORMA_EXPECTS(d1_.rows() == d0_.rows() && d1_.cols() == d0_.cols(),
                   "Map: D0/D1 shape mismatch");
  for (double x : d1_.data()) {
    PERFORMA_EXPECTS(x >= -1e-12, "Map: D1 must be non-negative");
  }
  for (std::size_t i = 0; i < d0_.rows(); ++i) {
    for (std::size_t j = 0; j < d0_.cols(); ++j) {
      if (i != j) {
        PERFORMA_EXPECTS(d0_(i, j) >= -1e-12,
                         "Map: D0 off-diagonal entries must be >= 0");
      }
    }
  }
  linalg::validate_generator(generator());
  PERFORMA_EXPECTS(mean_rate() > 0.0, "Map: event rate must be positive");
}

Matrix Map::generator() const { return d0_ + d1_; }

Vector Map::stationary_phases() const {
  return linalg::stationary_distribution(generator());
}

double Map::mean_rate() const {
  const Vector pi = stationary_phases();
  return linalg::dot(pi, d1_ * linalg::ones(dim()));
}

Vector Map::embedded_phases() const {
  // Phase distribution seen just after an event: pi D1 / (pi D1 e).
  const Vector pi = stationary_phases();
  Vector pe = pi * d1_;
  const double total = linalg::sum(pe);
  for (double& x : pe) x /= total;
  return pe;
}

double Map::interarrival_scv() const {
  // Interarrival time from the embedded phase vector is ME<p_e, -D0>.
  const linalg::Lu neg_d0(-1.0 * d0_);
  const Vector pe = embedded_phases();
  const Vector v1 = neg_d0.solve(linalg::ones(dim()));
  const Vector v2 = neg_d0.solve(v1);
  const double m1 = linalg::dot(pe, v1);
  const double m2 = 2.0 * linalg::dot(pe, v2);
  return m2 / (m1 * m1) - 1.0;
}

double Map::interarrival_correlation(unsigned lag) const {
  PERFORMA_EXPECTS(lag >= 1, "interarrival_correlation: lag must be >= 1");
  const linalg::Lu neg_d0(-1.0 * d0_);
  const Vector pe = embedded_phases();
  const Vector v1 = neg_d0.solve(linalg::ones(dim()));
  const Vector v2 = neg_d0.solve(v1);
  const double m1 = linalg::dot(pe, v1);
  const double m2 = 2.0 * linalg::dot(pe, v2);
  const double var = m2 - m1 * m1;
  if (var <= 0.0) return 0.0;

  // P = (-D0)^{-1} D1: phase transition across one arrival.
  const Matrix p = neg_d0.solve(d1_);
  // E[X_0 X_lag] = p_e (-D0)^{-1} P^lag (-D0)^{-1} e.
  Vector w = v1;             // (-D0)^{-1} e
  for (unsigned k = 0; k < lag; ++k) w = p * w;
  const double joint = linalg::dot(pe, neg_d0.solve(w));
  // Careful with ordering: (-D0)^{-1} P^lag (-D0)^{-1} e; we computed
  // P^lag (-D0)^{-1} e first, then applied (-D0)^{-1} once more.
  return (joint - m1 * m1) / var;
}

Map poisson_map(double rate) {
  PERFORMA_EXPECTS(rate > 0.0, "poisson_map: rate must be positive");
  return Map(Matrix{{-rate}}, Matrix{{rate}});
}

Map renewal_map(const medist::MeDistribution& interarrival) {
  PERFORMA_EXPECTS(interarrival.is_phase_type(),
                   "renewal_map: interarrival distribution must be "
                   "phase-type for a valid MAP representation");
  const Matrix& b = interarrival.rate_matrix();
  const Vector exits = interarrival.exit_rates();
  const Vector& p = interarrival.entry_vector();
  const std::size_t n = interarrival.dim();

  Matrix d1(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) d1(i, j) = exits[i] * p[j];
  return Map(-1.0 * b, std::move(d1));
}

Map as_map(const Mmpp& mmpp) {
  return Map(mmpp.generator() - mmpp.rate_matrix(), mmpp.rate_matrix());
}

Map superpose(const Map& a, const Map& b) {
  return Map(linalg::kron_sum(a.d0(), b.d0()),
             linalg::kron_sum(a.d1(), b.d1()));
}

}  // namespace performa::map
