#include "map/server_model.h"

namespace performa::map {

ServerModel::ServerModel(const medist::MeDistribution& up,
                         const medist::MeDistribution& down, double nu_p,
                         double delta)
    : down_dim_(down.dim()),
      up_dim_(up.dim()),
      nu_p_(nu_p),
      delta_(delta),
      mmpp_(build(up, down, nu_p, delta)) {
  PERFORMA_EXPECTS(nu_p > 0.0, "ServerModel: nu_p must be positive");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "ServerModel: delta must lie in [0,1]");
}

Mmpp ServerModel::build(const medist::MeDistribution& up,
                        const medist::MeDistribution& down, double nu_p,
                        double delta) {
  const std::size_t nd = down.dim();
  const std::size_t nu = up.dim();
  const std::size_t n = nd + nu;

  const Matrix& bd = down.rate_matrix();
  const Matrix& bu = up.rate_matrix();
  const Vector exit_d = down.exit_rates();  // B_down e
  const Vector exit_u = up.exit_rates();    // B_up e
  const Vector& pd = down.entry_vector();
  const Vector& pu = up.entry_vector();

  Matrix q(n, n, 0.0);
  // Top-left: -B_down (repair phase transitions).
  for (std::size_t i = 0; i < nd; ++i)
    for (std::size_t j = 0; j < nd; ++j) q(i, j) = -bd(i, j);
  // Top-right: repair completion, re-entering an UP phase: (B_down e) p_up.
  for (std::size_t i = 0; i < nd; ++i)
    for (std::size_t j = 0; j < nu; ++j) q(i, nd + j) = exit_d[i] * pu[j];
  // Bottom-right: -B_up.
  for (std::size_t i = 0; i < nu; ++i)
    for (std::size_t j = 0; j < nu; ++j) q(nd + i, nd + j) = -bu(i, j);
  // Bottom-left: failure, entering a DOWN phase: (B_up e) p_down.
  for (std::size_t i = 0; i < nu; ++i)
    for (std::size_t j = 0; j < nd; ++j) q(nd + i, j) = exit_u[i] * pd[j];

  Vector rates(n);
  for (std::size_t i = 0; i < nd; ++i) rates[i] = delta * nu_p;
  for (std::size_t i = 0; i < nu; ++i) rates[nd + i] = nu_p;

  return Mmpp(std::move(q), std::move(rates));
}

double ServerModel::availability() const {
  const Vector pi = mmpp_.stationary_phases();
  double up_mass = 0.0;
  for (std::size_t i = down_dim_; i < dim(); ++i) up_mass += pi[i];
  return up_mass;
}

double ServerModel::mean_service_rate() const {
  const double a = availability();
  return nu_p_ * (a + delta_ * (1.0 - a));
}

}  // namespace performa::map
