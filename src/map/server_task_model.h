// Per-server model with phase-type task times (paper Sec. 2.4, bullet
// "Hyperexponential task times"): the state of one server is the pair
// (server phase, task phase). Task phases advance at the server's current
// speed (nu_p while UP, delta*nu_p while DOWN -- zero for crashes), and a
// task completion is a *marked* transition that immediately starts the
// next (fictional, under load independence) task in a fresh phase drawn
// from the task entry vector. The resulting per-server process is a MAP
// whose marked events are service completions.
//
// With exponential tasks (one task phase) this collapses exactly to the
// MMPP of server_model.h.
#pragma once

#include "map/map_process.h"
#include "map/lumped_aggregate.h"
#include "map/server_model.h"

namespace performa::map {

/// One cluster node with phase-type task times, as a service MAP.
class ServerTaskModel {
 public:
  /// `task` must be a phase-type distribution with mean 1/nu_p to match
  /// the paper's normalization (any positive mean is accepted; the speed
  /// interpretation is: task = required work at UP speed).
  ServerTaskModel(const medist::MeDistribution& up,
                  const medist::MeDistribution& down, double nu_p,
                  double delta, const medist::MeDistribution& task);

  /// Combined phase count: (down_dim + up_dim) * task_dim.
  std::size_t dim() const noexcept { return map_.dim(); }
  std::size_t server_dim() const noexcept { return server_dim_; }
  std::size_t task_dim() const noexcept { return task_dim_; }

  /// The per-server service MAP <D0, D1>.
  const Map& service_map() const noexcept { return map_; }

  /// Phase index helper: phase = server_phase * task_dim + task_phase.
  std::size_t phase_index(std::size_t server_phase,
                          std::size_t task_phase) const;

  /// Long-run completion rate of one (always-busy) server.
  double mean_completion_rate() const { return map_.mean_rate(); }

 private:
  std::size_t server_dim_;
  std::size_t task_dim_;
  Map map_;

  static Map build(const medist::MeDistribution& up,
                   const medist::MeDistribution& down, double nu_p,
                   double delta, const medist::MeDistribution& task);
};

/// N-server aggregation of a per-server MAP on the lumped (exchangeable)
/// occupancy state space -- the MAP analogue of LumpedAggregate. Marked
/// (D1) transitions of any single server are marked transitions of the
/// aggregate.
class LumpedMapAggregate {
 public:
  LumpedMapAggregate(const Map& per_server, unsigned n_servers);

  const Map& aggregate() const noexcept { return map_; }
  unsigned n_servers() const noexcept { return n_servers_; }
  std::size_t state_count() const noexcept { return states_.size(); }
  const Occupancy& occupancy(std::size_t idx) const;

 private:
  unsigned n_servers_;
  std::vector<Occupancy> states_;
  Map map_;

  static Map build(const Map& per_server,
                   const std::vector<Occupancy>& states);
};

}  // namespace performa::map
