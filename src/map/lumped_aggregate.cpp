#include "map/lumped_aggregate.h"

#include <map>
#include <utility>

namespace performa::map {

namespace {

// Ordered map from occupancy to index; construction-time only.
using IndexMap = std::map<Occupancy, std::size_t>;

IndexMap make_index(const std::vector<Occupancy>& states) {
  IndexMap idx;
  for (std::size_t i = 0; i < states.size(); ++i) idx.emplace(states[i], i);
  return idx;
}

}  // namespace

std::vector<Occupancy> LumpedAggregate::enumerate(std::size_t phases,
                                                  unsigned n) {
  std::vector<Occupancy> out;
  Occupancy current(phases, 0);
  // Recursive enumeration of compositions of n into `phases` parts.
  auto rec = [&](auto&& self, std::size_t pos, unsigned remaining) -> void {
    if (pos + 1 == phases) {
      current[pos] = remaining;
      out.push_back(current);
      return;
    }
    for (unsigned k = 0; k <= remaining; ++k) {
      current[pos] = k;
      self(self, pos + 1, remaining - k);
    }
  };
  rec(rec, 0, n);
  return out;
}

Mmpp LumpedAggregate::build(const ServerModel& server,
                            const std::vector<Occupancy>& states) {
  const Mmpp& one = server.mmpp();
  const std::size_t m = one.dim();
  const std::size_t n_states = states.size();
  const IndexMap index = make_index(states);

  Matrix q(n_states, n_states, 0.0);
  Vector rates(n_states, 0.0);

  for (std::size_t si = 0; si < n_states; ++si) {
    const Occupancy& occ = states[si];
    double diag = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      if (occ[s] == 0) continue;
      rates[si] += occ[s] * one.rates()[s];
      for (std::size_t t = 0; t < m; ++t) {
        if (t == s) continue;
        const double rate = occ[s] * one.generator()(s, t);
        if (rate <= 0.0) continue;
        Occupancy next = occ;
        --next[s];
        ++next[t];
        q(si, index.at(next)) += rate;
        diag += rate;
      }
    }
    q(si, si) = -diag;
  }
  return Mmpp(std::move(q), std::move(rates));
}

LumpedAggregate::LumpedAggregate(const ServerModel& server, unsigned n_servers)
    : n_servers_(n_servers),
      down_dim_(server.down_dim()),
      states_(enumerate(server.dim(), n_servers)),
      mmpp_(build(server, states_)) {
  PERFORMA_EXPECTS(n_servers >= 1, "LumpedAggregate: need at least 1 server");
}

const Occupancy& LumpedAggregate::occupancy(std::size_t idx) const {
  PERFORMA_EXPECTS(idx < states_.size(),
                   "LumpedAggregate::occupancy: index out of range");
  return states_[idx];
}

std::size_t LumpedAggregate::index_of(const Occupancy& occ) const {
  PERFORMA_EXPECTS(occ.size() == states_.front().size(),
                   "LumpedAggregate::index_of: wrong occupancy length");
  unsigned total = 0;
  for (unsigned c : occ) total += c;
  PERFORMA_EXPECTS(total == n_servers_,
                   "LumpedAggregate::index_of: occupancy does not sum to N");
  // Linear scan is fine: only used in tests/diagnostics.
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == occ) return i;
  }
  throw InvalidArgument("LumpedAggregate::index_of: state not found");
}

unsigned LumpedAggregate::up_count(std::size_t idx) const {
  const Occupancy& occ = occupancy(idx);
  unsigned up = 0;
  for (std::size_t s = down_dim_; s < occ.size(); ++s) up += occ[s];
  return up;
}

Vector LumpedAggregate::up_count_distribution() const {
  const Vector pi = mmpp_.stationary_phases();
  Vector dist(n_servers_ + 1, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) dist[up_count(i)] += pi[i];
  return dist;
}

std::size_t lumped_state_count(std::size_t phases, unsigned n_servers) {
  // C(N + m - 1, m - 1) computed multiplicatively.
  std::size_t result = 1;
  for (std::size_t k = 1; k < phases; ++k) {
    result = result * (n_servers + k) / k;
  }
  return result;
}

}  // namespace performa::map
