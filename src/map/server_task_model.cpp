#include "map/server_task_model.h"

#include <map>

namespace performa::map {

ServerTaskModel::ServerTaskModel(const medist::MeDistribution& up,
                                 const medist::MeDistribution& down,
                                 double nu_p, double delta,
                                 const medist::MeDistribution& task)
    : server_dim_(up.dim() + down.dim()),
      task_dim_(task.dim()),
      map_(build(up, down, nu_p, delta, task)) {}

std::size_t ServerTaskModel::phase_index(std::size_t server_phase,
                                         std::size_t task_phase) const {
  PERFORMA_EXPECTS(server_phase < server_dim_ && task_phase < task_dim_,
                   "ServerTaskModel::phase_index: out of range");
  return server_phase * task_dim_ + task_phase;
}

Map ServerTaskModel::build(const medist::MeDistribution& up,
                           const medist::MeDistribution& down, double nu_p,
                           double delta,
                           const medist::MeDistribution& task) {
  PERFORMA_EXPECTS(task.is_phase_type(),
                   "ServerTaskModel: task distribution must be phase-type");
  // Server modulating chain (DOWN phases first, as in ServerModel). The
  // task distribution is a *time* distribution at full speed, so the task
  // phase process is scaled by 1 while UP and by delta while DOWN.
  const ServerModel server(up, down, nu_p, delta);
  const Matrix& q1 = server.mmpp().generator();
  const std::size_t ms = server.dim();
  const std::size_t mt = task.dim();
  const std::size_t n = ms * mt;

  const Matrix& b_task = task.rate_matrix();
  const Vector exits = task.exit_rates();
  const Vector& entry = task.entry_vector();

  auto speed = [&](std::size_t s) {
    return server.is_up_phase(s) ? 1.0 : delta;
  };

  Matrix d0(n, n, 0.0);
  Matrix d1(n, n, 0.0);
  for (std::size_t s = 0; s < ms; ++s) {
    for (std::size_t j = 0; j < mt; ++j) {
      const std::size_t row = s * mt + j;
      // Server phase transitions (task phase untouched).
      for (std::size_t s2 = 0; s2 < ms; ++s2) {
        if (s2 != s) d0(row, s2 * mt + j) += q1(s, s2);
      }
      // Task phase progress at the current speed: generator -B_task.
      const double c = speed(s);
      double out = -q1(s, s);
      for (std::size_t j2 = 0; j2 < mt; ++j2) {
        if (j2 == j) continue;
        const double rate = c * (-b_task(j, j2));
        if (rate > 0.0) {
          d0(row, s * mt + j2) += rate;
          out += rate;
        }
      }
      // Completion (marked event): next task starts in a fresh phase.
      const double complete = c * exits[j];
      if (complete > 0.0) {
        for (std::size_t j2 = 0; j2 < mt; ++j2) {
          if (entry[j2] > 0.0) d1(row, s * mt + j2) = complete * entry[j2];
        }
        out += complete;
      }
      d0(row, row) = -out;
    }
  }
  return Map(std::move(d0), std::move(d1));
}

namespace {

std::vector<Occupancy> enumerate_occupancies(std::size_t phases, unsigned n) {
  std::vector<Occupancy> out;
  Occupancy current(phases, 0);
  auto rec = [&](auto&& self, std::size_t pos, unsigned remaining) -> void {
    if (pos + 1 == phases) {
      current[pos] = remaining;
      out.push_back(current);
      return;
    }
    for (unsigned k = 0; k <= remaining; ++k) {
      current[pos] = k;
      self(self, pos + 1, remaining - k);
    }
  };
  rec(rec, 0, n);
  return out;
}

}  // namespace

LumpedMapAggregate::LumpedMapAggregate(const Map& per_server,
                                       unsigned n_servers)
    : n_servers_(n_servers),
      states_(enumerate_occupancies(per_server.dim(), n_servers)),
      map_(build(per_server, states_)) {
  PERFORMA_EXPECTS(n_servers >= 1, "LumpedMapAggregate: need >= 1 server");
}

const Occupancy& LumpedMapAggregate::occupancy(std::size_t idx) const {
  PERFORMA_EXPECTS(idx < states_.size(),
                   "LumpedMapAggregate::occupancy: index out of range");
  return states_[idx];
}

Map LumpedMapAggregate::build(const Map& per_server,
                              const std::vector<Occupancy>& states) {
  const std::size_t m = per_server.dim();
  const std::size_t n_states = states.size();
  std::map<Occupancy, std::size_t> index;
  for (std::size_t i = 0; i < n_states; ++i) index.emplace(states[i], i);

  Matrix d0(n_states, n_states, 0.0);
  Matrix d1(n_states, n_states, 0.0);
  for (std::size_t si = 0; si < n_states; ++si) {
    const Occupancy& occ = states[si];
    double out = 0.0;
    for (std::size_t s = 0; s < m; ++s) {
      if (occ[s] == 0) continue;
      for (std::size_t t = 0; t < m; ++t) {
        // Unmarked per-server transitions (D0 off-diagonal).
        if (t != s) {
          const double rate0 = occ[s] * per_server.d0()(s, t);
          if (rate0 > 0.0) {
            Occupancy next = occ;
            --next[s];
            ++next[t];
            d0(si, index.at(next)) += rate0;
            out += rate0;
          }
        }
        // Marked transitions (completions) -- t == s allowed.
        const double rate1 = occ[s] * per_server.d1()(s, t);
        if (rate1 > 0.0) {
          Occupancy next = occ;
          --next[s];
          ++next[t];
          d1(si, index.at(next)) += rate1;
          out += rate1;
        }
      }
    }
    d0(si, si) = -out;
  }
  return Map(std::move(d0), std::move(d1));
}

}  // namespace performa::map
