// Single-server modulating chain of the DSN'07 cluster model (Sec. 2.2).
//
// A server alternates between matrix-exponential UP periods <p_up, B_up>
// and DOWN (repair) periods <p_down, B_down>. Its modulating generator,
// with DOWN phases ordered first (as in the paper), is
//
//        [ -B_down              B_down e p_up ]
//   Q1 = [                                     ]
//        [  B_up e p_down      -B_up           ]
//
// and the modulated service-completion rates are delta*nu_p in every DOWN
// phase and nu_p in every UP phase (the diagonal of L1).
#pragma once

#include "map/mmpp.h"
#include "medist/me_dist.h"

namespace performa::map {

/// One cluster node as an MMPP building block.
class ServerModel {
 public:
  /// `nu_p`: service rate while UP; `delta` in [0,1]: degradation factor
  /// while DOWN (0 = crash).
  ServerModel(const medist::MeDistribution& up,
              const medist::MeDistribution& down, double nu_p, double delta);

  /// Number of DOWN phases (they occupy indices [0, down_dim)).
  std::size_t down_dim() const noexcept { return down_dim_; }
  /// Number of UP phases (indices [down_dim, down_dim+up_dim)).
  std::size_t up_dim() const noexcept { return up_dim_; }
  std::size_t dim() const noexcept { return down_dim_ + up_dim_; }

  double nu_p() const noexcept { return nu_p_; }
  double delta() const noexcept { return delta_; }

  /// The single-server MMPP <Q1, diag(L1)>.
  const Mmpp& mmpp() const noexcept { return mmpp_; }

  /// True at phase index i iff i is an UP phase.
  bool is_up_phase(std::size_t i) const noexcept { return i >= down_dim_; }

  /// Steady-state availability computed from the modulating chain; by the
  /// renewal-reward theorem this equals MTTF / (MTTF + MTTR).
  double availability() const;

  /// Long-run average service rate of one server:
  /// nu_p * (A + delta * (1 - A)).
  double mean_service_rate() const;

 private:
  static Mmpp build(const medist::MeDistribution& up,
                    const medist::MeDistribution& down, double nu_p,
                    double delta);

  std::size_t down_dim_;
  std::size_t up_dim_;
  double nu_p_;
  double delta_;
  Mmpp mmpp_;
};

}  // namespace performa::map
