#include "map/repair_facility.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace performa::map {

namespace {

// Ordered map from (f, repair, active) to state index; construction only.
using StateKey = std::tuple<unsigned, Occupancy, Occupancy>;
using IndexMap = std::map<StateKey, std::size_t>;

std::vector<Occupancy> compositions(std::size_t parts, unsigned total) {
  std::vector<Occupancy> out;
  Occupancy current(parts, 0);
  auto rec = [&](auto&& self, std::size_t pos, unsigned remaining) -> void {
    if (pos + 1 == parts) {
      current[pos] = remaining;
      out.push_back(current);
      return;
    }
    for (unsigned k = 0; k <= remaining; ++k) {
      current[pos] = k;
      self(self, pos + 1, remaining - k);
    }
  };
  rec(rec, 0, total);
  return out;
}

unsigned occupancy_sum(const Occupancy& occ) {
  unsigned total = 0;
  for (unsigned c : occ) total += c;
  return total;
}

}  // namespace

Mmpp RepairFacility::build(const medist::MeDistribution& up,
                           const medist::MeDistribution& down, double nu_p,
                           double delta, unsigned n, unsigned crews,
                           unsigned spares, bool homogeneous,
                           std::vector<FacilityState>& states_out) {
  PERFORMA_EXPECTS(n >= 1, "RepairFacility: need at least 1 server slot");
  PERFORMA_EXPECTS(crews >= 1, "RepairFacility: need at least 1 repair crew");
  PERFORMA_EXPECTS(nu_p > 0.0, "RepairFacility: nu_p must be positive");
  PERFORMA_EXPECTS(delta >= 0.0 && delta <= 1.0,
                   "RepairFacility: delta in [0,1]");
  PERFORMA_EXPECTS(up.is_phase_type() && down.is_phase_type(),
                   "RepairFacility: UP/DOWN distributions must be phase-type "
                   "for the occupancy interpretation");

  const std::size_t md = down.dim();
  const std::size_t mu = up.dim();

  if (homogeneous) {
    // The facility never binds: every failed unit starts repair at once in
    // its own slot, which is the paper's independent-repair process. Build
    // the identical LumpedAggregate (DOWN phases first, same enumeration,
    // same arithmetic) so downstream solves agree bit-for-bit.
    const ServerModel server(up, down, nu_p, delta);
    const LumpedAggregate agg(server, n);
    states_out.reserve(agg.state_count());
    for (std::size_t i = 0; i < agg.state_count(); ++i) {
      const Occupancy& occ = agg.occupancy(i);
      FacilityState fs;
      fs.repair.assign(occ.begin(), occ.begin() + static_cast<long>(md));
      fs.active.assign(occ.begin() + static_cast<long>(md), occ.end());
      fs.failed = occupancy_sum(fs.repair);
      states_out.push_back(std::move(fs));
    }
    return agg.mmpp();
  }

  // A crew beyond the unit population can never be busy.
  const unsigned c_eff = std::min(crews, n + spares);

  // Enumerate states by failed count f: the crew occupancy sums to
  // min(c, f) and the slot occupancy to min(N, N+s-f); waiting units and
  // idle spares are phase-less and implied by f.
  for (unsigned f = 0; f <= n + spares; ++f) {
    const unsigned r = std::min(c_eff, f);
    const unsigned a = std::min(n, n + spares - f);
    for (const Occupancy& d : compositions(md, r)) {
      for (const Occupancy& u : compositions(mu, a)) {
        states_out.push_back(FacilityState{f, d, u});
      }
    }
  }

  IndexMap index;
  for (std::size_t i = 0; i < states_out.size(); ++i) {
    index.emplace(StateKey{states_out[i].failed, states_out[i].repair,
                           states_out[i].active},
                  i);
  }

  const Vector p_up = up.entry_vector();
  const Vector p_down = down.entry_vector();
  const Vector exit_up = up.exit_rates();
  const Vector exit_down = down.exit_rates();
  const Matrix& bu = up.rate_matrix();
  const Matrix& bd = down.rate_matrix();

  const std::size_t n_states = states_out.size();
  Matrix q(n_states, n_states, 0.0);
  Vector rates(n_states, 0.0);

  for (std::size_t si = 0; si < n_states; ++si) {
    const FacilityState& fs = states_out[si];
    const unsigned f = fs.failed;
    const unsigned r = std::min(c_eff, f);
    const unsigned a = std::min(n, n + spares - f);
    const unsigned w = f - r;
    const unsigned p = (n + spares - f) - a;
    rates[si] = nu_p * a + delta * nu_p * (n - a);

    double diag = 0.0;
    auto add = [&](unsigned f2, const Occupancy& d2, const Occupancy& u2,
                   double rate) {
      if (rate <= 0.0) return;
      q(si, index.at(StateKey{f2, d2, u2})) += rate;
      diag += rate;
    };

    // Phase progression of active units (within the UP distribution) and
    // of units under repair (within the DOWN distribution). The phase
    // process of <p, B> is the transient chain with generator -B.
    for (std::size_t i = 0; i < mu; ++i) {
      if (fs.active[i] == 0) continue;
      for (std::size_t j = 0; j < mu; ++j) {
        if (j == i) continue;
        const double rate = fs.active[i] * -bu(i, j);
        if (rate <= 0.0) continue;
        Occupancy u2 = fs.active;
        --u2[i];
        ++u2[j];
        add(f, fs.repair, u2, rate);
      }
    }
    for (std::size_t i = 0; i < md; ++i) {
      if (fs.repair[i] == 0) continue;
      for (std::size_t j = 0; j < md; ++j) {
        if (j == i) continue;
        const double rate = fs.repair[i] * -bd(i, j);
        if (rate <= 0.0) continue;
        Occupancy d2 = fs.repair;
        --d2[i];
        ++d2[j];
        add(f, d2, fs.active, rate);
      }
    }

    // Failure of an active unit in UP phase i: the unit enters the shop
    // (a free crew starts repair in a fresh DOWN phase, else it waits),
    // and the emptied slot is refilled from spares when any are idle.
    for (std::size_t i = 0; i < mu; ++i) {
      if (fs.active[i] == 0) continue;
      const double base = fs.active[i] * exit_up[i];
      if (base <= 0.0) continue;
      const bool starts_repair = r < c_eff;
      const bool spare_fills = p > 0;
      Occupancy u_base = fs.active;
      --u_base[i];
      if (starts_repair && spare_fills) {
        for (std::size_t dd = 0; dd < md; ++dd) {
          if (p_down[dd] <= 0.0) continue;
          Occupancy d2 = fs.repair;
          ++d2[dd];
          for (std::size_t uu = 0; uu < mu; ++uu) {
            if (p_up[uu] <= 0.0) continue;
            Occupancy u2 = u_base;
            ++u2[uu];
            add(f + 1, d2, u2, base * p_down[dd] * p_up[uu]);
          }
        }
      } else if (starts_repair) {
        for (std::size_t dd = 0; dd < md; ++dd) {
          if (p_down[dd] <= 0.0) continue;
          Occupancy d2 = fs.repair;
          ++d2[dd];
          add(f + 1, d2, u_base, base * p_down[dd]);
        }
      } else if (spare_fills) {
        for (std::size_t uu = 0; uu < mu; ++uu) {
          if (p_up[uu] <= 0.0) continue;
          Occupancy u2 = u_base;
          ++u2[uu];
          add(f + 1, fs.repair, u2, base * p_up[uu]);
        }
      } else {
        add(f + 1, fs.repair, u_base, base);
      }
    }

    // Repair completion in DOWN phase i: the freed crew pulls the next
    // waiting unit (fresh DOWN phase) if any; the repaired unit activates
    // into an empty slot (fresh UP phase) or joins the cold spares pool.
    for (std::size_t i = 0; i < md; ++i) {
      if (fs.repair[i] == 0) continue;
      const double base = fs.repair[i] * exit_down[i];
      if (base <= 0.0) continue;
      const bool next_starts = w > 0;
      const bool activates = a < n;
      Occupancy d_base = fs.repair;
      --d_base[i];
      if (next_starts && activates) {
        for (std::size_t dd = 0; dd < md; ++dd) {
          if (p_down[dd] <= 0.0) continue;
          Occupancy d2 = d_base;
          ++d2[dd];
          for (std::size_t uu = 0; uu < mu; ++uu) {
            if (p_up[uu] <= 0.0) continue;
            Occupancy u2 = fs.active;
            ++u2[uu];
            add(f - 1, d2, u2, base * p_down[dd] * p_up[uu]);
          }
        }
      } else if (next_starts) {
        for (std::size_t dd = 0; dd < md; ++dd) {
          if (p_down[dd] <= 0.0) continue;
          Occupancy d2 = d_base;
          ++d2[dd];
          add(f - 1, d2, fs.active, base * p_down[dd]);
        }
      } else if (activates) {
        for (std::size_t uu = 0; uu < mu; ++uu) {
          if (p_up[uu] <= 0.0) continue;
          Occupancy u2 = fs.active;
          ++u2[uu];
          add(f - 1, d_base, u2, base * p_up[uu]);
        }
      } else {
        add(f - 1, d_base, fs.active, base);
      }
    }

    q(si, si) = -diag;
  }
  return Mmpp(std::move(q), std::move(rates));
}

RepairFacility::RepairFacility(const medist::MeDistribution& up,
                               const medist::MeDistribution& down, double nu_p,
                               double delta, unsigned n_servers, unsigned crews,
                               unsigned spares)
    : n_servers_(n_servers),
      crews_(crews),
      spares_(spares),
      nu_p_(nu_p),
      delta_(delta),
      homogeneous_(crews >= n_servers && spares == 0),
      states_(),
      mmpp_(build(up, down, nu_p, delta, n_servers, crews, spares,
                  homogeneous_, states_)) {}

const FacilityState& RepairFacility::state(std::size_t idx) const {
  PERFORMA_EXPECTS(idx < states_.size(),
                   "RepairFacility::state: index out of range");
  return states_[idx];
}

unsigned RepairFacility::active_count(std::size_t idx) const {
  return occupancy_sum(state(idx).active);
}

unsigned RepairFacility::in_repair_count(std::size_t idx) const {
  return occupancy_sum(state(idx).repair);
}

unsigned RepairFacility::waiting_count(std::size_t idx) const {
  const FacilityState& fs = state(idx);
  return fs.failed - occupancy_sum(fs.repair);
}

unsigned RepairFacility::spare_count(std::size_t idx) const {
  const FacilityState& fs = state(idx);
  return (n_servers_ + spares_ - fs.failed) - occupancy_sum(fs.active);
}

Vector RepairFacility::active_count_distribution() const {
  const Vector pi = mmpp_.stationary_phases();
  Vector dist(n_servers_ + 1, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    dist[active_count(i)] += pi[i];
  }
  return dist;
}

double RepairFacility::availability() const {
  const Vector dist = active_count_distribution();
  double mean = 0.0;
  for (std::size_t a = 0; a < dist.size(); ++a) {
    mean += static_cast<double>(a) * dist[a];
  }
  return mean / n_servers_;
}

double RepairFacility::mean_repair_queue() const {
  const Vector pi = mmpp_.stationary_phases();
  double mean = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    mean += static_cast<double>(waiting_count(i)) * pi[i];
  }
  return mean;
}

double RepairFacility::crew_utilization() const {
  const Vector pi = mmpp_.stationary_phases();
  double mean = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    mean += static_cast<double>(in_repair_count(i)) * pi[i];
  }
  return mean / std::min(crews_, n_servers_ + spares_);
}

double RepairFacility::mean_idle_spares() const {
  const Vector pi = mmpp_.stationary_phases();
  double mean = 0.0;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    mean += static_cast<double>(spare_count(i)) * pi[i];
  }
  return mean;
}

std::size_t repair_facility_state_count(std::size_t down_phases,
                                        std::size_t up_phases,
                                        unsigned n_servers, unsigned crews,
                                        unsigned spares) {
  const unsigned c_eff =
      std::min(crews, n_servers + spares);
  std::size_t total = 0;
  for (unsigned f = 0; f <= n_servers + spares; ++f) {
    const unsigned r = std::min(c_eff, f);
    const unsigned a = std::min(n_servers, n_servers + spares - f);
    total += lumped_state_count(down_phases, r) *
             lumped_state_count(up_phases, a);
  }
  return total;
}

}  // namespace performa::map
