#include "map/kron_aggregate.h"

#include "linalg/kron.h"

namespace performa::map {

Mmpp kron_aggregate(const ServerModel& server, unsigned n_servers) {
  PERFORMA_EXPECTS(n_servers >= 1, "kron_aggregate: need at least 1 server");
  const Mmpp& one = server.mmpp();

  Matrix q = one.generator();
  Vector rates = one.rates();
  for (unsigned k = 1; k < n_servers; ++k) {
    q = linalg::kron_sum(q, one.generator());
    // Rates are the diagonal of L_{k+1} = L_k ⊕ L1: they add across servers.
    Vector next(rates.size() * one.dim());
    for (std::size_t i = 0; i < rates.size(); ++i)
      for (std::size_t j = 0; j < one.dim(); ++j)
        next[i * one.dim() + j] = rates[i] + one.rates()[j];
    rates = std::move(next);
  }
  return Mmpp(std::move(q), std::move(rates));
}

std::size_t kron_state_count(const ServerModel& server, unsigned n_servers) {
  std::size_t count = 1;
  for (unsigned k = 0; k < n_servers; ++k) count *= server.dim();
  return count;
}

Mmpp heterogeneous_aggregate(const std::vector<ServerModel>& servers) {
  PERFORMA_EXPECTS(!servers.empty(),
                   "heterogeneous_aggregate: need at least 1 server");
  Matrix q = servers.front().mmpp().generator();
  Vector rates = servers.front().mmpp().rates();
  for (std::size_t s = 1; s < servers.size(); ++s) {
    const Mmpp& next = servers[s].mmpp();
    q = linalg::kron_sum(q, next.generator());
    Vector combined(rates.size() * next.dim());
    for (std::size_t i = 0; i < rates.size(); ++i)
      for (std::size_t j = 0; j < next.dim(); ++j)
        combined[i * next.dim() + j] = rates[i] + next.rates()[j];
    rates = std::move(combined);
  }
  return Mmpp(std::move(q), std::move(rates));
}

}  // namespace performa::map
