#include "map/kron_aggregate.h"

#include "linalg/kron.h"

namespace performa::map {

Mmpp kron_aggregate(const ServerModel& server, unsigned n_servers) {
  PERFORMA_EXPECTS(n_servers >= 1, "kron_aggregate: need at least 1 server");
  const Mmpp& one = server.mmpp();

  Matrix q = one.generator();
  Vector rates = one.rates();
  for (unsigned k = 1; k < n_servers; ++k) {
    q = linalg::kron_sum(q, one.generator());
    // Rates are the diagonal of L_{k+1} = L_k ⊕ L1: they add across servers.
    Vector next(rates.size() * one.dim());
    for (std::size_t i = 0; i < rates.size(); ++i)
      for (std::size_t j = 0; j < one.dim(); ++j)
        next[i * one.dim() + j] = rates[i] + one.rates()[j];
    rates = std::move(next);
  }
  return Mmpp(std::move(q), std::move(rates));
}

std::size_t kron_state_count(const ServerModel& server, unsigned n_servers) {
  std::size_t count = 1;
  for (unsigned k = 0; k < n_servers; ++k) count *= server.dim();
  return count;
}

KronMmpp::KronMmpp(Mmpp server, unsigned n_servers)
    : one_(std::move(server)), n_(n_servers) {
  PERFORMA_EXPECTS(n_servers >= 1, "KronMmpp: need at least 1 server");
  dim_ = 1;
  for (unsigned k = 0; k < n_; ++k) dim_ *= one_.dim();
}

KronMmpp::KronMmpp(const ServerModel& server, unsigned n_servers)
    : KronMmpp(server.mmpp(), n_servers) {}

Vector KronMmpp::apply(const Vector& v) const {
  return linalg::kron_sum_apply(one_.generator(), n_, v);
}

Vector KronMmpp::apply_left(const Vector& v) const {
  return linalg::kron_sum_apply_left(one_.generator(), n_, v);
}

Matrix KronMmpp::apply_left(const Matrix& x) const {
  return linalg::kron_sum_apply_left(one_.generator(), n_, x);
}

double KronMmpp::rate(std::size_t state) const {
  PERFORMA_EXPECTS(state < dim_, "KronMmpp::rate: state out of range");
  const std::size_t m = one_.dim();
  double total = 0.0;
  for (unsigned k = 0; k < n_; ++k) {
    total += one_.rates()[state % m];
    state /= m;
  }
  return total;
}

Vector KronMmpp::rate_vector() const {
  // Same digit recurrence as the materializing loop in kron_aggregate:
  // rates add across servers.
  Vector rates = one_.rates();
  for (unsigned k = 1; k < n_; ++k) {
    Vector next(rates.size() * one_.dim());
    for (std::size_t i = 0; i < rates.size(); ++i)
      for (std::size_t j = 0; j < one_.dim(); ++j)
        next[i * one_.dim() + j] = rates[i] + one_.rates()[j];
    rates = std::move(next);
  }
  return rates;
}

Vector KronMmpp::stationary() const {
  const Vector pi1 = one_.stationary_phases();
  Vector pi = pi1;
  for (unsigned k = 1; k < n_; ++k) pi = linalg::kron(pi, pi1);
  return pi;
}

double KronMmpp::mean_rate() const {
  return static_cast<double>(n_) * one_.mean_rate();
}

Mmpp KronMmpp::materialize() const {
  Matrix q = one_.generator();
  for (unsigned k = 1; k < n_; ++k) q = linalg::kron_sum(q, one_.generator());
  return Mmpp(std::move(q), rate_vector());
}

Mmpp heterogeneous_aggregate(const std::vector<ServerModel>& servers) {
  PERFORMA_EXPECTS(!servers.empty(),
                   "heterogeneous_aggregate: need at least 1 server");
  Matrix q = servers.front().mmpp().generator();
  Vector rates = servers.front().mmpp().rates();
  for (std::size_t s = 1; s < servers.size(); ++s) {
    const Mmpp& next = servers[s].mmpp();
    q = linalg::kron_sum(q, next.generator());
    Vector combined(rates.size() * next.dim());
    for (std::size_t i = 0; i < rates.size(); ++i)
      for (std::size_t j = 0; j < next.dim(); ++j)
        combined[i * next.dim() + j] = rates[i] + next.rates()[j];
    rates = std::move(combined);
  }
  return Mmpp(std::move(q), std::move(rates));
}

}  // namespace performa::map
