// Markovian Arrival Processes (MAPs) in the (D0, D1) notation of Neuts:
// D0 carries the phase transitions without an event, D1 the transitions
// that emit an event; D0 + D1 is the generator of the phase process.
//
// MAPs generalize both Poisson processes and MMPPs and are the vehicle
// for the paper's Sec. 2.4 extensions: non-exponential task arrival
// processes (any ME renewal process is a MAP) and service processes in
// which some transitions also remove a task (the analytic Discard model).
#pragma once

#include "map/mmpp.h"
#include "medist/me_dist.h"

namespace performa::map {

/// A Markovian Arrival Process <D0, D1>.
class Map {
 public:
  /// Throws InvalidArgument unless D0 and D1 are square, equally sized,
  /// D1 >= 0 elementwise, D0 has non-negative off-diagonal entries, and
  /// D0 + D1 has zero row sums.
  Map(Matrix d0, Matrix d1);

  const Matrix& d0() const noexcept { return d0_; }
  const Matrix& d1() const noexcept { return d1_; }
  std::size_t dim() const noexcept { return d0_.rows(); }

  /// Generator of the modulating phase process: D0 + D1.
  Matrix generator() const;

  /// Stationary phase distribution of the modulating process.
  Vector stationary_phases() const;

  /// Long-run event rate: pi D1 e.
  double mean_rate() const;

  /// Squared coefficient of variation of the stationary interarrival
  /// time (from the moments of the embedded renewal-like process:
  /// the interarrival distribution starting from the post-event phase
  /// vector is ME with <p_e, -D0>).
  double interarrival_scv() const;

  /// Lag-k autocorrelation of successive interarrival times; zero for
  /// renewal processes (Poisson, ME-renewal), nonzero for MMPPs.
  double interarrival_correlation(unsigned lag = 1) const;

 private:
  Matrix d0_;
  Matrix d1_;

  /// Phase distribution just after an arrival (stationary embedded).
  Vector embedded_phases() const;
};

/// Poisson(rate) as a 1-phase MAP.
Map poisson_map(double rate);

/// Renewal process with matrix-exponential interarrival times <p, B>:
/// D0 = -B, D1 = (B e) p. Requires a phase-type representation.
Map renewal_map(const medist::MeDistribution& interarrival);

/// An MMPP <Q, L> as a MAP: D0 = Q - diag(L), D1 = diag(L).
Map as_map(const Mmpp& mmpp);

/// Superposition of two independent MAPs (Kronecker-sum construction).
Map superpose(const Map& a, const Map& b);

}  // namespace performa::map
