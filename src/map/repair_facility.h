// Shared repair facility: the two-echelon c-crew / s-spare extension of
// the cluster's failure/repair process (Ferreira-style repair-system
// model; ROADMAP item 3).
//
// The paper repairs every failed server independently and in place. Here
// the N active *slots* draw operational units from a finite population of
// N + s units, and failed units funnel through a repair shop with c crews:
//
//   slot (active, UP phases)  --fail-->  repair shop:  crew free?
//                                          yes: in repair (DOWN phases)
//                                          no:  FCFS wait (phase-less)
//   repaired unit --> empty slot (fresh UP phase) or cold spares pool
//   slot emptied by a failure --> refilled from spares immediately, or
//                                 runs degraded (delta * nu_p) until a
//                                 repaired unit arrives
//
// State: (f, d, u) with f failed units in the shop, d an occupancy vector
// over the repair (DOWN) phases summing to r = min(c, f), and u an
// occupancy over the UP phases summing to a = min(N, N+s-f). Waiting
// units w = f - r and idle spares p = (N+s-f) - a are phase-less, so they
// are implied by f. The resulting state count,
//
//   sum_f C(r+m_d-1, m_d-1) * C(a+m_u-1, m_u-1),
//
// stays small even for large N when c is small: only units *in repair*
// carry repair phases, which is exactly what makes repair contention
// tractable where the independent model's lumped space would explode.
//
// When the facility never binds (c >= N and s == 0) every failed unit is
// repaired immediately in its own slot and the process *is* the paper's
// independent-repair model: the construction then delegates to
// LumpedAggregate, so downstream solves are bit-for-bit identical to the
// homogeneous path ("the paper's answers").
#pragma once

#include <vector>

#include "map/lumped_aggregate.h"

namespace performa::map {

/// One lumped state of the repair-facility process.
struct FacilityState {
  unsigned failed = 0;  ///< units in the shop (in repair + waiting)
  Occupancy repair;     ///< occupancy over DOWN phases, sums to min(c, f)
  Occupancy active;     ///< occupancy over UP phases, sums to min(N, N+s-f)
};

/// The c-crew / s-spare repair facility around N active slots.
class RepairFacility {
 public:
  /// `up`/`down`: per-unit UP and repair duration distributions (must be
  /// phase-type for the occupancy interpretation); `nu_p`: service speed
  /// of an operational slot; `delta` in [0,1]: degraded speed factor of a
  /// slot with no operational unit; `crews` >= 1; `spares` >= 0.
  RepairFacility(const medist::MeDistribution& up,
                 const medist::MeDistribution& down, double nu_p, double delta,
                 unsigned n_servers, unsigned crews, unsigned spares);

  unsigned n_servers() const noexcept { return n_servers_; }
  unsigned crews() const noexcept { return crews_; }
  unsigned spares() const noexcept { return spares_; }
  double nu_p() const noexcept { return nu_p_; }
  double delta() const noexcept { return delta_; }

  /// True iff the facility never binds (c >= N, s = 0) and the process
  /// was built by delegation to LumpedAggregate: solves on mmpp() then
  /// reproduce the independent-repair model bit-for-bit.
  bool homogeneous() const noexcept { return homogeneous_; }

  /// The modulating process with per-state service rates
  /// nu_p * a + delta * nu_p * (N - a), a = operational slots.
  const Mmpp& mmpp() const noexcept { return mmpp_; }
  std::size_t state_count() const noexcept { return states_.size(); }
  const FacilityState& state(std::size_t idx) const;

  /// Operational slots a, units in repair r, FCFS-waiting units w and
  /// idle spares p of lumped state `idx`.
  unsigned active_count(std::size_t idx) const;
  unsigned in_repair_count(std::size_t idx) const;
  unsigned waiting_count(std::size_t idx) const;
  unsigned spare_count(std::size_t idx) const;

  /// Stationary distribution of the operational-slot count (0..N).
  Vector active_count_distribution() const;

  /// Slot availability E[a] / N: long-run fraction of slots holding an
  /// operational unit. Equals the independent model's per-server
  /// availability when the facility never binds; strictly below it when
  /// repair contention queues recoveries.
  double availability() const;

  /// Long-run mean number of failed units waiting for a crew (E[w]).
  double mean_repair_queue() const;
  /// Long-run fraction of crews busy: E[r] / min(c, N+s).
  double crew_utilization() const;
  /// Long-run mean number of idle spares (E[p]).
  double mean_idle_spares() const;

 private:
  static Mmpp build(const medist::MeDistribution& up,
                    const medist::MeDistribution& down, double nu_p,
                    double delta, unsigned n, unsigned crews, unsigned spares,
                    bool homogeneous, std::vector<FacilityState>& states_out);

  unsigned n_servers_;
  unsigned crews_;
  unsigned spares_;
  double nu_p_;
  double delta_;
  bool homogeneous_;
  std::vector<FacilityState> states_;
  Mmpp mmpp_;
};

/// State count of the facility process without building it.
std::size_t repair_facility_state_count(std::size_t down_phases,
                                        std::size_t up_phases,
                                        unsigned n_servers, unsigned crews,
                                        unsigned spares);

}  // namespace performa::map
