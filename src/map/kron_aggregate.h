// N-server aggregation by Kronecker sums (the paper's Eq. for Q_N, L_N):
//
//   Q_N = Q1 ⊕ Q1 ⊕ ... ⊕ Q1,    L_N = L1 ⊕ L1 ⊕ ... ⊕ L1.
//
// The state space distinguishes servers and therefore has size m^N for
// m per-server phases. Exact but exponential in N -- use the lumped
// construction (lumped_aggregate.h) for anything beyond small N; the two
// are verified against each other in the test suite.
#pragma once

#include <vector>

#include "map/server_model.h"

namespace performa::map {

/// MMPP of N independent, statistically identical servers, full
/// (distinguishable) product state space.
Mmpp kron_aggregate(const ServerModel& server, unsigned n_servers);

/// State-space size of the Kronecker form: dim(server)^N.
std::size_t kron_state_count(const ServerModel& server, unsigned n_servers);

/// Aggregation of *heterogeneous* servers (different speeds, fault and
/// repair processes): the paper assumes statistically identical nodes,
/// but the Kronecker construction does not care. No lumping is possible
/// here, so the state space is the full product -- keep the cluster
/// small. Answers design questions like "two reliable nodes or three
/// flaky ones?".
Mmpp heterogeneous_aggregate(const std::vector<ServerModel>& servers);

/// Matrix-free view of the N-server Kronecker aggregate <Q1^{⊕N}, L1^{⊕N}>.
///
/// Stores only the m-phase per-server MMPP and exposes the m^N-dimensional
/// operator through apply()/apply_left() (linalg::kron_sum_apply under the
/// hood), the exact per-state rate ladder through rate(), and the product
/// stationary vector pi1^{⊗N} -- none of which ever materializes an
/// m^N x m^N matrix. This is what lets R-solver residual and utilization
/// checks run at state-space sizes where even storing Q_N is impossible.
class KronMmpp {
 public:
  KronMmpp(Mmpp server, unsigned n_servers);
  KronMmpp(const ServerModel& server, unsigned n_servers);

  /// The m-phase single-server MMPP being superposed.
  const Mmpp& server() const noexcept { return one_; }
  unsigned servers() const noexcept { return n_; }
  /// Product state count m^N.
  std::size_t dim() const noexcept { return dim_; }

  /// y = Q_N · v (matrix-free, O(N·m^{N+1})).
  Vector apply(const Vector& v) const;
  /// y = v · Q_N.
  Vector apply_left(const Vector& v) const;
  /// Y = X · Q_N row-wise (thread-pool parallel, bit-stable).
  Matrix apply_left(const Matrix& x) const;

  /// Event rate of product state s: the sum of the per-server phase rates
  /// read off s's mixed-radix digits (the diagonal of L_N).
  double rate(std::size_t state) const;
  /// All m^N state rates (the diagonal of L_N as a vector).
  Vector rate_vector() const;

  /// Stationary phases of the joint modulating chain: pi1^{⊗N}, exact by
  /// independence -- no m^N-state GTH elimination required.
  Vector stationary() const;
  /// Long-run completion rate: N · (pi1 · rates1).
  double mean_rate() const;

  /// Dense equivalent (kron_aggregate); only sensible for small N.
  Mmpp materialize() const;

 private:
  Mmpp one_;
  unsigned n_;
  std::size_t dim_;
};

}  // namespace performa::map
