// N-server aggregation by Kronecker sums (the paper's Eq. for Q_N, L_N):
//
//   Q_N = Q1 ⊕ Q1 ⊕ ... ⊕ Q1,    L_N = L1 ⊕ L1 ⊕ ... ⊕ L1.
//
// The state space distinguishes servers and therefore has size m^N for
// m per-server phases. Exact but exponential in N -- use the lumped
// construction (lumped_aggregate.h) for anything beyond small N; the two
// are verified against each other in the test suite.
#pragma once

#include <vector>

#include "map/server_model.h"

namespace performa::map {

/// MMPP of N independent, statistically identical servers, full
/// (distinguishable) product state space.
Mmpp kron_aggregate(const ServerModel& server, unsigned n_servers);

/// State-space size of the Kronecker form: dim(server)^N.
std::size_t kron_state_count(const ServerModel& server, unsigned n_servers);

/// Aggregation of *heterogeneous* servers (different speeds, fault and
/// repair processes): the paper assumes statistically identical nodes,
/// but the Kronecker construction does not care. No lumping is possible
/// here, so the state space is the full product -- keep the cluster
/// small. Answers design questions like "two reliable nodes or three
/// flaky ones?".
Mmpp heterogeneous_aggregate(const std::vector<ServerModel>& servers);

}  // namespace performa::map
