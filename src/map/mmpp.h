// Markov-Modulated Poisson Process: a CTMC phase process <Q> plus a
// per-phase Poisson event rate vector.
//
// In the cluster model the MMPP describes *service completions* (the
// aggregated N-server process of Sec. 2.2); in the N-Burst teletraffic
// dual it describes *arrivals*. The same object serves both.
#pragma once

#include "linalg/matrix.h"

namespace performa::map {

using linalg::Matrix;
using linalg::Vector;

/// An MMPP <Q, rates>: while the modulating chain sits in phase i, events
/// occur as a Poisson process with rate rates[i].
class Mmpp {
 public:
  /// Throws InvalidArgument if Q is not a generator, the rate vector has
  /// the wrong length, or any rate is negative.
  Mmpp(Matrix q, Vector rates);

  const Matrix& generator() const noexcept { return q_; }
  const Vector& rates() const noexcept { return rates_; }
  std::size_t dim() const noexcept { return rates_.size(); }

  /// Diagonal rate matrix L = diag(rates).
  Matrix rate_matrix() const;

  /// Stationary distribution of the modulating chain (GTH).
  Vector stationary_phases() const;

  /// Long-run average event rate: pi . rates.
  double mean_rate() const;

  /// Largest and smallest per-phase rate (the nu_N .. nu_0 ladder ends).
  double max_rate() const noexcept;
  double min_rate() const noexcept;

 private:
  Matrix q_;
  Vector rates_;
};

}  // namespace performa::map
