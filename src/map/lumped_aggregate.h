// N-server aggregation on the lumped (exchangeable) state space.
//
// Because the servers are statistically identical and the modulated rate
// only depends on *how many* servers occupy each phase, the m^N product
// chain is lumpable onto the space of occupancy vectors
// (n_0, ..., n_{m-1}) with sum n_s = N -- size C(N+m-1, m-1). This is the
// "more efficient representation" the paper alludes to in Sec. 2.2, and it
// is what makes N = 5..20 with multi-phase repair distributions tractable.
//
// Transition structure: a per-server transition s -> s' with rate q(s,s')
// becomes an occupancy transition n -> n - e_s + e_s' with rate n_s*q(s,s');
// the modulated rate of state n is sum_s n_s * r(s).
#pragma once

#include <vector>

#include "map/server_model.h"

namespace performa::map {

/// Occupancy vector: entry s counts the servers currently in phase s.
using Occupancy = std::vector<unsigned>;

/// The lumped state space plus its MMPP.
class LumpedAggregate {
 public:
  LumpedAggregate(const ServerModel& server, unsigned n_servers);

  const Mmpp& mmpp() const noexcept { return mmpp_; }
  unsigned n_servers() const noexcept { return n_servers_; }
  std::size_t state_count() const noexcept { return states_.size(); }

  /// Occupancy vector of lumped state `idx`.
  const Occupancy& occupancy(std::size_t idx) const;

  /// Lumped state index for an occupancy vector; throws InvalidArgument
  /// if the vector does not sum to N or has the wrong length.
  std::size_t index_of(const Occupancy& occ) const;

  /// Number of servers in an UP phase in state `idx`.
  unsigned up_count(std::size_t idx) const;

  /// Stationary distribution of the number of UP servers: entry k is the
  /// long-run fraction of time exactly k servers are UP.
  Vector up_count_distribution() const;

 private:
  unsigned n_servers_;
  std::size_t down_dim_;  // phases [0, down_dim_) are DOWN phases
  std::vector<Occupancy> states_;
  Mmpp mmpp_;

  static std::vector<Occupancy> enumerate(std::size_t phases, unsigned n);
  static Mmpp build(const ServerModel& server,
                    const std::vector<Occupancy>& states);
};

/// Lumped state count C(N+m-1, m-1) without building the space.
std::size_t lumped_state_count(std::size_t phases, unsigned n_servers);

}  // namespace performa::map
