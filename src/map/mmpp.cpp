#include "map/mmpp.h"

#include <algorithm>
#include <utility>

#include "linalg/ctmc.h"

namespace performa::map {

Mmpp::Mmpp(Matrix q, Vector rates) : q_(std::move(q)), rates_(std::move(rates)) {
  linalg::validate_generator(q_);
  PERFORMA_EXPECTS(rates_.size() == q_.rows(),
                   "Mmpp: rate vector length must match generator order");
  for (double r : rates_) {
    PERFORMA_EXPECTS(r >= 0.0, "Mmpp: rates must be non-negative");
  }
}

Matrix Mmpp::rate_matrix() const { return Matrix::diag(rates_); }

Vector Mmpp::stationary_phases() const {
  return linalg::stationary_distribution(q_);
}

double Mmpp::mean_rate() const { return linalg::dot(stationary_phases(), rates_); }

double Mmpp::max_rate() const noexcept {
  return *std::max_element(rates_.begin(), rates_.end());
}

double Mmpp::min_rate() const noexcept {
  return *std::min_element(rates_.begin(), rates_.end());
}

}  // namespace performa::map
