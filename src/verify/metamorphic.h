// Metamorphic cross-validation harness.
//
// A solver bug that shifts every answer by a few percent passes any test
// whose oracle is the solver itself. Metamorphic relations need no
// external oracle: they assert how the *answer must transform* when the
// *model* is transformed in a way the mathematics fully understands.
// The harness draws random cluster configurations from a seed (every
// failure message carries the seed and the full parameter spec, so any
// CI failure replays locally with one environment variable) and checks:
//
//   rate-scaling        speeding every rate up by c leaves the stationary
//                       queue-length distribution untouched
//   server-permutation  relabelling the servers of a heterogeneous
//                       cluster cannot change the aggregate queue
//   lumped-vs-full      the lumped occupancy chain and the full Kronecker
//                       product chain describe the same process
//   lambda-monotone     the mean queue length is strictly increasing in
//                       the arrival rate
//   tail-exponent       in blow-up region i the queue pmf decays with the
//                       paper's exponent beta_i = i(alpha - 1) + 1
//
// tests/metamorphic_test.cpp runs each relation over a battery of draws;
// PERFORMA_METAMORPHIC_MODELS / PERFORMA_METAMORPHIC_SEED scale the
// battery up (the CI drill runs hundreds of models) or replay a failure.
#pragma once

#include <string>

#include "map/lumped_aggregate.h"
#include "map/mmpp.h"

namespace performa::verify {

/// One random cluster configuration, fully determined by `seed`: the
/// same seed reproduces the same model bit-for-bit on every platform
/// that ships the same std::mt19937_64 (all of them; the engine is
/// specified exactly).
struct ModelDraw {
  unsigned seed = 0;
  unsigned n_servers = 1;
  unsigned t_phases = 1;  ///< repair phases; 1 = exponential repair
  double nu_p = 2.0;
  double delta = 0.2;
  double mttf = 90.0;
  double mttr = 10.0;
  double alpha = 1.4;  ///< TPT tail exponent (used when t_phases > 1)
  double theta = 0.2;  ///< TPT weight decay
  double rho = 0.5;    ///< drawn utilization in the always-stable band

  /// One-line parameter spec, sufficient to reconstruct the model by
  /// hand; embedded in every failure detail.
  std::string spec() const;

  /// The single-server building block of this draw.
  map::ServerModel server() const;

  /// The lumped N-server MMPP of this draw.
  map::Mmpp mmpp() const;
};

/// Draw the configuration deterministically from `seed`.
ModelDraw draw_model(unsigned seed);

/// Outcome of one relation on one draw: `detail` always carries the
/// measured quantities, and on failure additionally the draw's spec().
struct RelationOutcome {
  bool pass = true;
  std::string detail;
};

RelationOutcome check_rate_scaling(const ModelDraw& draw);
RelationOutcome check_server_permutation(const ModelDraw& draw);
RelationOutcome check_lumped_vs_full(const ModelDraw& draw);
RelationOutcome check_lambda_monotonicity(const ModelDraw& draw);
RelationOutcome check_tail_exponent(const ModelDraw& draw);
/// Matrix-free structure relation: solving through the Kronecker
/// certificate (qbd::m_mmpp_1_kron, matrix-free residual/utilization
/// paths) must agree with the dense blocks, and permuting the factor
/// order of the heterogeneous matrix-free operator must permute -- not
/// change -- its action.
RelationOutcome check_kron_matrix_free(const ModelDraw& draw);

/// Battery size: $PERFORMA_METAMORPHIC_MODELS, else `fallback`.
unsigned metamorphic_model_count(unsigned fallback);

/// Seed base: $PERFORMA_METAMORPHIC_SEED, else `fallback`. Case i of a
/// battery uses seed base + i.
unsigned metamorphic_seed_base(unsigned fallback);

}  // namespace performa::verify
