#include "verify/metamorphic.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "core/blowup.h"
#include "linalg/errors.h"
#include "linalg/kron.h"
#include "map/kron_aggregate.h"
#include "medist/me_dist.h"
#include "medist/tpt.h"
#include "qbd/qbd.h"
#include "qbd/solution.h"
#include "qbd/trust.h"

namespace performa::verify {
namespace {

[[gnu::format(printf, 1, 2)]] std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  char buf[512];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

medist::MeDistribution repair_dist(unsigned t_phases, double alpha,
                                   double theta, double mttr) {
  return t_phases <= 1
             ? medist::exponential_from_mean(mttr)
             : medist::make_tpt(medist::TptSpec{t_phases, alpha, theta, mttr});
}

qbd::QbdSolution solve(const map::Mmpp& mmpp, double lambda) {
  return qbd::QbdSolution(qbd::m_mmpp_1(mmpp, lambda));
}

double rel_diff(double a, double b) {
  const double scale = std::max(std::abs(a), std::abs(b));
  return scale > 0.0 ? std::abs(a - b) / scale : 0.0;
}

/// Fail with the measured quantities and the spec that reproduces them.
RelationOutcome fail(const ModelDraw& draw, std::string detail) {
  return {false, detail + " [" + draw.spec() + "]"};
}

}  // namespace

std::string ModelDraw::spec() const {
  return format(
      "seed=%u N=%u T=%u nu_p=%.6g delta=%.6g mttf=%.6g mttr=%.6g "
      "alpha=%.6g theta=%.6g rho=%.6g",
      seed, n_servers, t_phases, nu_p, delta, mttf, mttr, alpha, theta, rho);
}

map::ServerModel ModelDraw::server() const {
  return map::ServerModel(medist::exponential_from_mean(mttf),
                          repair_dist(t_phases, alpha, theta, mttr), nu_p,
                          delta);
}

map::Mmpp ModelDraw::mmpp() const {
  return map::LumpedAggregate(server(), n_servers).mmpp();
}

ModelDraw draw_model(unsigned seed) {
  std::mt19937_64 rng(seed);
  auto uni = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  ModelDraw d;
  d.seed = seed;
  d.n_servers = static_cast<unsigned>(1 + rng() % 3);
  d.t_phases = static_cast<unsigned>(1 + rng() % 4);
  d.nu_p = uni(1.0, 3.0);
  d.delta = uni(0.1, 0.5);
  d.mttf = uni(30.0, 120.0);
  d.mttr = uni(2.0, 15.0);
  d.alpha = uni(1.2, 1.8);
  d.theta = uni(0.15, 0.5);
  d.rho = uni(0.2, 0.7);
  return d;
}

RelationOutcome check_rate_scaling(const ModelDraw& draw) {
  const map::Mmpp base = draw.mmpp();
  const double lambda = draw.rho * base.mean_rate();

  // Log-uniform time-scale change over 8 decades: dimensional analysis
  // says the *dimensionless* stationary distribution cannot move.
  std::mt19937_64 rng(0x5ca1eu ^ draw.seed);
  const double c = std::pow(
      10.0, std::uniform_real_distribution<double>(-4.0, 4.0)(rng));
  linalg::Vector scaled_rates = base.rates();
  for (double& r : scaled_rates) r *= c;
  const map::Mmpp scaled(base.generator() * c, std::move(scaled_rates));

  const qbd::QbdSolution a = solve(base, lambda);
  const qbd::QbdSolution b = solve(scaled, lambda * c);

  const double d_mean = rel_diff(a.mean_queue_length(), b.mean_queue_length());
  const double d_empty = rel_diff(a.probability_empty(), b.probability_empty());
  const double d_tail = rel_diff(a.tail(25), b.tail(25));
  const std::string detail = format(
      "c=%.3e dmean=%.3e dempty=%.3e dtail=%.3e", c, d_mean, d_empty, d_tail);
  if (d_mean > 1e-9 || d_empty > 1e-9 || d_tail > 1e-8) {
    return fail(draw, "rate-scaling violated: " + detail);
  }
  return {true, detail};
}

RelationOutcome check_server_permutation(const ModelDraw& draw) {
  // Two *different* servers so the permutation is not vacuous: the
  // second is the draw with perturbed speed, reliability and repair law.
  const map::ServerModel s1 = draw.server();
  std::mt19937_64 rng(0xbad5eedu ^ draw.seed);
  auto uni = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  const unsigned t2 = static_cast<unsigned>(1 + rng() % 3);
  const map::ServerModel s2(
      medist::exponential_from_mean(draw.mttf * uni(0.5, 2.0)),
      repair_dist(t2, 1.5, 0.3, draw.mttr * uni(0.5, 2.0)),
      draw.nu_p * uni(0.6, 1.6), std::min(0.9, draw.delta * uni(0.5, 1.8)));

  const map::Mmpp fwd = map::heterogeneous_aggregate({s1, s2});
  const map::Mmpp rev = map::heterogeneous_aggregate({s2, s1});
  const double lambda = draw.rho * fwd.mean_rate();

  const qbd::QbdSolution a = solve(fwd, lambda);
  const qbd::QbdSolution b = solve(rev, lambda);
  const double d_mean = rel_diff(a.mean_queue_length(), b.mean_queue_length());
  const double d_empty = rel_diff(a.probability_empty(), b.probability_empty());
  const std::string detail = format("dmean=%.3e dempty=%.3e", d_mean, d_empty);
  if (d_mean > 1e-9 || d_empty > 1e-9) {
    return fail(draw, "server-permutation violated: " + detail);
  }
  return {true, detail};
}

RelationOutcome check_lumped_vs_full(const ModelDraw& draw) {
  // The full product space is m^N; clamp the draw so the exact chain
  // stays small while the lumping still has something to merge.
  ModelDraw clamped = draw;
  clamped.n_servers = std::min(draw.n_servers, 3u);
  clamped.t_phases = std::min(draw.t_phases, 3u);
  const map::ServerModel server = clamped.server();

  const map::Mmpp lumped =
      map::LumpedAggregate(server, clamped.n_servers).mmpp();
  const map::Mmpp full = map::kron_aggregate(server, clamped.n_servers);
  const double lambda = clamped.rho * lumped.mean_rate();

  const qbd::QbdSolution a = solve(lumped, lambda);
  const qbd::QbdSolution b = solve(full, lambda);
  const double d_mean = rel_diff(a.mean_queue_length(), b.mean_queue_length());
  const double d_empty = rel_diff(a.probability_empty(), b.probability_empty());
  const double d_tail = rel_diff(a.tail(10), b.tail(10));
  const std::string detail = format(
      "lumped_dim=%zu full_dim=%zu dmean=%.3e dempty=%.3e dtail=%.3e",
      lumped.dim(), full.dim(), d_mean, d_empty, d_tail);
  if (d_mean > 1e-8 || d_empty > 1e-8 || d_tail > 1e-7) {
    return fail(draw, "lumped-vs-full violated: " + detail);
  }
  return {true, detail};
}

RelationOutcome check_lambda_monotonicity(const ModelDraw& draw) {
  const map::Mmpp mmpp = draw.mmpp();
  const double nu_bar = mmpp.mean_rate();
  double prev = -1.0;
  std::string detail;
  for (const double rho : {0.25, 0.45, 0.65, 0.80, 0.92}) {
    const double eq = solve(mmpp, rho * nu_bar).mean_queue_length();
    detail += format("E[Q](%.2f)=%.6g ", rho, eq);
    if (eq <= prev) {
      return fail(draw,
                  "lambda-monotonicity violated: " + detail +
                      format("(%.6g after %.6g)", eq, prev));
    }
    prev = eq;
  }
  return {true, detail};
}

RelationOutcome check_tail_exponent(const ModelDraw& draw) {
  // Purpose-built blow-up configuration: region i needs i simultaneous
  // long repairs to oversaturate, so use N = i servers with power-tail
  // repair wide enough (T = 20 phases, power-law range gamma^19 ~ 1e4)
  // that the pmf shows a clean power-law window before the truncation
  // kicks in. Only alpha and the region index come from the draw; the
  // paper's prediction is beta_i = i (alpha - 1) + 1.
  const unsigned region = 1 + (draw.seed % 2);
  const double alpha = draw.alpha;
  ModelDraw cfg = draw;
  cfg.n_servers = region;
  cfg.t_phases = 20;
  cfg.alpha = alpha;
  cfg.theta = 0.5;
  cfg.nu_p = 2.0;
  cfg.delta = 0.05;
  cfg.mttf = 90.0;
  cfg.mttr = 10.0;

  const map::Mmpp mmpp = cfg.mmpp();
  core::BlowupParams bp;
  bp.n_servers = cfg.n_servers;
  bp.nu_p = cfg.nu_p;
  bp.delta = cfg.delta;
  bp.availability = cfg.mttf / (cfg.mttf + cfg.mttr);
  const std::vector<double> rhos = core::blowup_utilizations(bp);
  // Sit well inside region i: midway between its boundaries (the upper
  // boundary of region 1 is rho = 1).
  const double hi = region == 1 ? 1.0 : rhos[region - 2];
  const double lo = rhos[region - 1];
  const double rho = lo + 0.5 * (hi - lo);
  const double lambda = rho * mmpp.mean_rate();

  const qbd::QbdSolution sol = solve(mmpp, lambda);
  const double beta = core::tail_exponent(region, alpha);

  // Least-squares slope of log pmf against log k over a geometric grid
  // inside the power-law window (past the boundary levels, before the
  // TPT truncation at ~gamma^{T-1} repair time scales).
  const std::size_t k_lo = 100, k_hi = 2000;
  const linalg::Vector pmf = sol.pmf_upto(k_hi);
  std::vector<double> xs, ys;
  for (std::size_t k = k_lo; k <= k_hi; k = (k * 5) / 4) {
    if (pmf[k] <= 0.0) break;
    xs.push_back(std::log(static_cast<double>(k)));
    ys.push_back(std::log(pmf[k]));
  }
  if (xs.size() < 5) {
    return fail(cfg, "tail-exponent: pmf window collapsed");
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
  }
  const double n = static_cast<double>(xs.size());
  const double slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);

  const std::string detail = format(
      "region=%u alpha=%.3f rho=%.3f fitted=%.3f expected=-%.3f", region,
      alpha, rho, slope, beta);
  // Empirically the window's fit sits within 0.03 (region 1) / 0.15
  // (region 2) of beta_i across alpha in [1.2, 1.8]; 0.25 leaves margin
  // while still separating beta_1 = alpha from beta_2 = 2 alpha - 1 and
  // both from a geometric decay, which leaves the band entirely.
  if (std::abs(slope + beta) > 0.25) {
    return fail(cfg, "tail-exponent violated: " + detail);
  }
  return {true, detail};
}

RelationOutcome check_kron_matrix_free(const ModelDraw& draw) {
  // Part 1: the structure certificate must be invisible in the answer.
  // Solve the same M/MMPP/1 queue twice -- once through the matrix-free
  // Kronecker blocks (qbd::m_mmpp_1_kron), once through the materialized
  // m^N generator -- and demand the performance measures coincide. The
  // dense oracle needs the full product chain, so clamp like
  // lumped-vs-full.
  ModelDraw clamped = draw;
  clamped.n_servers = std::min(std::max(draw.n_servers, 2u), 3u);
  clamped.t_phases = std::min(draw.t_phases, 3u);
  const map::KronMmpp cluster(clamped.server(), clamped.n_servers);
  const double lambda = clamped.rho * cluster.mean_rate();

  const qbd::QbdSolution structured(qbd::m_mmpp_1_kron(cluster, lambda));
  const qbd::QbdSolution dense(qbd::m_mmpp_1(cluster.materialize(), lambda));
  const double d_mean =
      rel_diff(structured.mean_queue_length(), dense.mean_queue_length());
  const double d_empty =
      rel_diff(structured.probability_empty(), dense.probability_empty());
  const double d_tail = rel_diff(structured.tail(25), dense.tail(25));

  // Part 2: factor permutation. Swapping the factors of a heterogeneous
  // Kronecker sum is a relabelling of the product space, so the
  // matrix-free walker's action must permute with it -- element for
  // element, not merely in distribution.
  std::mt19937_64 rng(0xf2eeu ^ draw.seed);
  auto fill = [&rng](linalg::Matrix& q) {
    std::uniform_real_distribution<double> uni(0.05, 2.0);
    for (std::size_t r = 0; r < q.rows(); ++r) {
      double total = 0.0;
      for (std::size_t c = 0; c < q.cols(); ++c) {
        if (r == c) continue;
        q(r, c) = uni(rng);
        total += q(r, c);
      }
      q(r, r) = -total;
    }
  };
  linalg::Matrix a(2, 2, 0.0);
  linalg::Matrix b(3, 3, 0.0);
  fill(a);
  fill(b);
  std::uniform_real_distribution<double> uv(-1.0, 1.0);
  linalg::Vector v(6);
  for (double& x : v) x = uv(rng);
  const linalg::Vector fwd = linalg::kron_sum_apply({a, b}, v);
  linalg::Vector w(6);
  for (std::size_t i1 = 0; i1 < 2; ++i1) {
    for (std::size_t i2 = 0; i2 < 3; ++i2) w[i2 * 2 + i1] = v[i1 * 3 + i2];
  }
  const linalg::Vector rev = linalg::kron_sum_apply({b, a}, w);
  double d_perm = 0.0;
  for (std::size_t i1 = 0; i1 < 2; ++i1) {
    for (std::size_t i2 = 0; i2 < 3; ++i2) {
      d_perm = std::max(
          d_perm, std::abs(fwd[i1 * 3 + i2] - rev[i2 * 2 + i1]));
    }
  }

  const std::string detail =
      format("dim=%zu dmean=%.3e dempty=%.3e dtail=%.3e dperm=%.3e",
             cluster.dim(), d_mean, d_empty, d_tail, d_perm);
  if (structured.trust().verdict != qbd::TrustVerdict::kCertified) {
    return fail(draw, "kron-matrix-free: structured solve not certified: " +
                          detail);
  }
  if (d_mean > 1e-8 || d_empty > 1e-8 || d_tail > 1e-7 || d_perm > 1e-12) {
    return fail(draw, "kron-matrix-free violated: " + detail);
  }
  return {true, detail};
}

unsigned metamorphic_model_count(unsigned fallback) {
  const char* env = std::getenv("PERFORMA_METAMORPHIC_MODELS");
  if (env == nullptr || *env == '\0') return fallback;
  const unsigned long v = std::strtoul(env, nullptr, 10);
  return v > 0 ? static_cast<unsigned>(v) : fallback;
}

unsigned metamorphic_seed_base(unsigned fallback) {
  const char* env = std::getenv("PERFORMA_METAMORPHIC_SEED");
  if (env == nullptr || *env == '\0') return fallback;
  return static_cast<unsigned>(std::strtoul(env, nullptr, 10));
}

}  // namespace performa::verify
