#include "runner/outcome.h"

#include <exception>

#include "qbd/solve_report.h"
#include "qbd/trust.h"

namespace performa::runner {

const char* to_string(Outcome o) noexcept {
  switch (o) {
    case Outcome::kOk:
      return "ok";
    case Outcome::kTimeout:
      return "timeout";
    case Outcome::kCrash:
      return "crash";
    case Outcome::kSolverFailure:
      return "solver-failure";
    case Outcome::kUnstableModel:
      return "unstable-model";
    case Outcome::kDeadlineExceeded:
      return "deadline-exceeded";
    case Outcome::kRejectedAnswer:
      return "rejected-answer";
  }
  return "?";
}

bool outcome_from_string(std::string_view text, Outcome& out) noexcept {
  for (Outcome o : {Outcome::kOk, Outcome::kTimeout, Outcome::kCrash,
                    Outcome::kSolverFailure, Outcome::kUnstableModel,
                    Outcome::kDeadlineExceeded, Outcome::kRejectedAnswer}) {
    if (text == to_string(o)) {
      out = o;
      return true;
    }
  }
  return false;
}

bool is_transient(Outcome o) noexcept {
  // Deadline aborts are wall-clock-relative, like timeouts: a retry runs
  // under a fresh budget and may well make it.
  return o == Outcome::kTimeout || o == Outcome::kCrash ||
         o == Outcome::kDeadlineExceeded;
}

Outcome outcome_from_exit_code(int code) noexcept {
  switch (code) {
    case kExitOk:
      return Outcome::kOk;
    case kExitSolverFailure:
      return Outcome::kSolverFailure;
    case kExitUnstableModel:
      return Outcome::kUnstableModel;
    case kExitDeadlineExceeded:
      return Outcome::kDeadlineExceeded;
    case kExitRejectedAnswer:
      return Outcome::kRejectedAnswer;
    default:
      return Outcome::kCrash;
  }
}

ClassifiedError classify_current_exception() noexcept {
  ClassifiedError e;
  try {
    throw;
  } catch (const qbd::UnstableModel& ex) {
    e.exit_code = kExitUnstableModel;
    e.outcome = Outcome::kUnstableModel;
    e.message = ex.what();
  } catch (const qbd::DeadlineExceeded& ex) {
    e.exit_code = kExitDeadlineExceeded;
    e.outcome = Outcome::kDeadlineExceeded;
    e.message = ex.report().summary();
  } catch (const DeadlineError& ex) {
    e.exit_code = kExitDeadlineExceeded;
    e.outcome = Outcome::kDeadlineExceeded;
    e.message = ex.what();
  } catch (const qbd::SolverFailure& ex) {
    e.exit_code = kExitSolverFailure;
    e.outcome = Outcome::kSolverFailure;
    // The full report is multi-line; the compact summary travels better
    // through checkpoint records and progress lines.
    e.message = ex.report().summary();
  } catch (const qbd::TrustRejected& ex) {
    e.exit_code = kExitRejectedAnswer;
    e.outcome = Outcome::kRejectedAnswer;
    e.message = ex.trust().summary();
  } catch (const std::exception& ex) {
    e.exit_code = kExitError;
    e.outcome = Outcome::kCrash;
    e.message = ex.what();
  } catch (...) {
    e.exit_code = kExitError;
    e.outcome = Outcome::kCrash;
    e.message = "unknown exception";
  }
  return e;
}

}  // namespace performa::runner
