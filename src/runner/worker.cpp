#include "runner/worker.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "linalg/errors.h"
#include "obs/flight.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "runner/sweep.h"

namespace performa::runner {

namespace {

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

// write(2) the whole buffer, resuming across EINTR and partial writes.
void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // reader is gone; the exit code still tells the story
    }
    off += static_cast<std::size_t>(n);
  }
}

int wait_for(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  return status;
}

// Classify a reaped worker from its wait status and drained payload.
WorkerReport classify_worker(const std::string& payload, int status,
                             bool timed_out, double timeout_seconds) {
  WorkerReport report;
  if (payload.rfind("error ", 0) == 0) {
    const std::size_t nl = payload.find('\n');
    report.message = payload.substr(6, nl == std::string::npos
                                           ? std::string::npos
                                           : nl - 6);
  }
  if (timed_out) {
    report.outcome = Outcome::kTimeout;
    char msg[96];
    std::snprintf(msg, sizeof msg,
                  "worker exceeded %.3gs wall-clock budget (SIGKILL)",
                  timeout_seconds);
    report.message = msg;
  } else if (WIFSIGNALED(status)) {
    report.outcome = Outcome::kCrash;
    report.message =
        std::string("worker killed by signal ") +
        std::to_string(WTERMSIG(status)) + " (" +
        ::strsignal(WTERMSIG(status)) + ")";
  } else if (WIFEXITED(status) && WEXITSTATUS(status) == kExitOk) {
    if (decode_result(payload, report.result)) {
      report.outcome = Outcome::kOk;
    } else {
      report.outcome = Outcome::kCrash;
      report.message = "worker exited 0 but its result payload is torn";
    }
  } else if (WIFEXITED(status)) {
    report.outcome = outcome_from_exit_code(WEXITSTATUS(status));
    if (report.message.empty()) {
      report.message =
          "worker exited with code " + std::to_string(WEXITSTATUS(status));
    }
  } else {
    report.outcome = Outcome::kCrash;
    report.message = "worker ended in an unexpected wait status";
  }
  return report;
}

}  // namespace

std::string encode_result(const PointResult& result) {
  std::string out;
  for (const auto& [name, value] : result.metrics) {
    out += "metric ";
    out += name;
    out += ' ';
    out += hex_double(value);
    out += '\n';
  }
  if (!result.rng_state.empty()) {
    out += "rng ";
    out += result.rng_state;
    out += '\n';
  }
  out += "ok\n";
  return out;
}

bool decode_result(const std::string& payload, PointResult& out) {
  PointResult r;
  bool complete = false;
  std::size_t start = 0;
  while (start < payload.size()) {
    if (complete) return false;  // trailing data after the sentinel
    std::size_t nl = payload.find('\n', start);
    if (nl == std::string::npos) return false;  // torn final line
    const std::string line = payload.substr(start, nl - start);
    start = nl + 1;
    if (line == "ok") {
      complete = true;
    } else if (line.rfind("metric ", 0) == 0) {
      const std::size_t sp = line.rfind(' ');
      if (sp <= 7) return false;
      const std::string name = line.substr(7, sp - 7);
      const std::string text = line.substr(sp + 1);
      char* end = nullptr;
      const double value = std::strtod(text.c_str(), &end);
      if (name.empty() || end != text.c_str() + text.size()) return false;
      r.metrics.emplace_back(name, value);
    } else if (line.rfind("rng ", 0) == 0) {
      r.rng_state = line.substr(4);
    } else {
      return false;
    }
  }
  if (!complete) return false;
  out = std::move(r);
  return true;
}

WorkerReport run_point_inline(const PointFn& fn) {
  WorkerReport report;
  const auto start = std::chrono::steady_clock::now();
  try {
    report.result = fn();
    report.outcome = Outcome::kOk;
  } catch (...) {
    const ClassifiedError e = classify_current_exception();
    report.outcome = e.outcome;
    report.message = e.message;
  }
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return report;
}

WorkerHandle spawn_worker(const PointFn& fn) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw NumericalError("spawn_worker: pipe() failed");
  }
  WorkerHandle handle;
  handle.started = std::chrono::steady_clock::now();

  // Compose the fragment path in the parent, before fork, so both sides
  // agree on it without communicating: the child writes its spans there,
  // the supervisor merges the file back on reap. File-sink tracing only;
  // a memory sink has no path a child could hand back.
  static std::atomic<std::uint64_t> seq{0};
  if (obs::trace_enabled() && !obs::trace_file_path().empty()) {
    handle.trace_fragment = obs::trace_file_path() + ".frag." +
                            std::to_string(seq.fetch_add(1));
  }
  // Same protocol for the structured log: a file-sink parent hands the
  // child a private fragment so their write(2) offsets never fight.
  // (A stderr-sink parent needs nothing: O_APPEND-less tty writes from
  // two pids interleave only at line granularity, which single-write
  // lines already guarantee.)
  if (!obs::log_file_path().empty()) {
    handle.log_fragment = obs::log_file_path() + ".frag." +
                          std::to_string(seq.fetch_add(1));
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    throw NumericalError("spawn_worker: fork() failed");
  }

  if (pid == 0) {
    // Worker child: compute, ship the payload, and _exit without running
    // parent-owned atexit handlers or flushing parent stdio twice.
    // (Read ends of sibling workers' pipes may be inherited here; that
    // is harmless -- EOF is governed by write ends, and the parent
    // closes its copy of every write end right after forking.)
    ::close(fds[0]);
    if (!handle.trace_fragment.empty()) {
      try {
        obs::reopen_trace_in_child(handle.trace_fragment);
      } catch (...) {
        obs::disable_trace();  // cannot open the fragment: run untraced
      }
    }
    if (!handle.log_fragment.empty()) {
      obs::reopen_log_in_child(handle.log_fragment);
    }
    // A crashed worker leaves its own flight file (under the child's
    // pid); a clean one removes it below.
    obs::reopen_flight_in_child();
    int code = kExitError;
    try {
      PointResult result;
      {
        obs::Span span("runner.worker.point");
        result = fn();
      }
      write_all(fds[1], encode_result(result));
      code = kExitOk;
    } catch (...) {
      const ClassifiedError e = classify_current_exception();
      write_all(fds[1], "error " + e.message + "\n");
      code = e.exit_code;
    }
    // _exit skips destructors, so the fragment must be flushed by hand
    // (disable_trace also fcloses the fragment file).
    obs::flush_trace();
    obs::disable_trace();
    obs::disable_flight(/*keep_file=*/false);  // clean exit: no evidence
    ::close(fds[1]);
    ::_exit(code);
  }

  ::close(fds[1]);
  ::fcntl(fds[0], F_SETFL, ::fcntl(fds[0], F_GETFL) | O_NONBLOCK);
  handle.pid = pid;
  handle.fd = fds[0];
  return handle;
}

void drain_worker(WorkerHandle& worker) {
  if (worker.fd < 0 || worker.eof) return;
  char buf[4096];
  while (true) {
    const ssize_t n = ::read(worker.fd, buf, sizeof buf);
    if (n > 0) {
      worker.payload.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      worker.eof = true;  // worker closed its end (exit or kill)
      return;
    }
    if (errno == EINTR) continue;
    return;  // EAGAIN: drained everything currently buffered
  }
}

void kill_worker(const WorkerHandle& worker) noexcept {
  if (worker.running()) ::kill(worker.pid, SIGKILL);
}

WorkerReport reap_worker(WorkerHandle& worker, bool timed_out,
                         double timeout_seconds) {
  PERFORMA_EXPECTS(worker.running(), "reap_worker: no live worker");
  // Pick up any bytes that raced the final poll, then release the pipe.
  drain_worker(worker);
  if (worker.fd >= 0) {
    ::close(worker.fd);
    worker.fd = -1;
  }
  const int status = wait_for(worker.pid);
  worker.pid = -1;

  // The worker is gone; fold its trace fragment (if any) into the
  // supervisor's trace. A worker killed before its first flush simply
  // left nothing to merge.
  if (!worker.trace_fragment.empty()) {
    obs::merge_trace_fragment(worker.trace_fragment);
    worker.trace_fragment.clear();
  }
  if (!worker.log_fragment.empty()) {
    obs::merge_log_fragment(worker.log_fragment);
    worker.log_fragment.clear();
  }

  WorkerReport report =
      classify_worker(worker.payload, status, timed_out, timeout_seconds);
  report.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    worker.started)
          .count();
  return report;
}

WorkerReport run_point_isolated(const PointFn& fn, double timeout_seconds) {
  PERFORMA_EXPECTS(timeout_seconds >= 0.0,
                   "run_point_isolated: timeout must be >= 0");
  WorkerHandle worker = spawn_worker(fn);
  bool timed_out = false;
  bool interrupted = false;
  while (!worker.eof) {
    int wait_ms = -1;
    if (timeout_seconds > 0.0 && !timed_out) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        worker.started)
              .count();
      const double remaining = timeout_seconds - elapsed;
      if (remaining <= 0.0) {
        kill_worker(worker);
        timed_out = true;
        continue;  // drain until EOF so the child can be reaped cleanly
      }
      wait_ms = static_cast<int>(remaining * 1e3) + 1;
    }
    struct pollfd pfd = {worker.fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno != EINTR) break;
      if (sweep_interrupted()) {
        kill_worker(worker);
        interrupted = true;
      }
      continue;
    }
    if (ready == 0) continue;  // deadline re-checked at the loop head
    drain_worker(worker);
  }
  WorkerReport report = reap_worker(worker, timed_out, timeout_seconds);
  if (interrupted) {
    report.outcome = Outcome::kCrash;
    report.message = "worker killed: sweep interrupted";
  }
  return report;
}

}  // namespace performa::runner
