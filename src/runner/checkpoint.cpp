#include "runner/checkpoint.h"

#include <unistd.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "linalg/errors.h"
#include "obs/metrics.h"

namespace performa::runner {

namespace {

constexpr char kHeaderPrefix[] = "performa-checkpoint v";

// Field separators are structural; anything the caller puts into a field
// is flattened so a record always round-trips.
std::string sanitize(std::string_view text, const char* forbidden) {
  std::string out(text);
  for (char& c : out) {
    if (c == '\n' || c == '\r' || std::strchr(forbidden, c) != nullptr) {
      c = '_';
    }
  }
  return out;
}

std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end == text.c_str() + text.size();
}

bool parse_size(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string header_line(int version, const std::string& sweep_name) {
  return std::string(kHeaderPrefix) + std::to_string(version) + " " +
         sanitize(sweep_name, "|");
}

// "performa-checkpoint v<digits> <name>" -> (version, name).
bool parse_header(const std::string& line, int& version, std::string& name) {
  const std::size_t prefix = sizeof kHeaderPrefix - 1;
  if (line.compare(0, prefix, kHeaderPrefix) != 0) return false;
  const std::size_t sp = line.find(' ', prefix);
  if (sp == std::string::npos || sp == prefix) return false;
  const std::string digits = line.substr(prefix, sp - prefix);
  char* end = nullptr;
  const long v = std::strtol(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size()) return false;
  version = static_cast<int>(v);
  name = line.substr(sp + 1);
  return true;
}

}  // namespace

double CheckpointPoint::metric(const std::string& name) const noexcept {
  for (const auto& [key, value] : metrics) {
    if (key == name) return value;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

const CheckpointPoint* SweepCheckpoint::find(
    const std::string& id) const noexcept {
  const CheckpointPoint* hit = nullptr;
  for (const CheckpointPoint& p : points) {
    if (p.id == id) hit = &p;  // later records win
  }
  return hit;
}

std::uint32_t crc32(std::string_view data) {
  // Reflected CRC-32 (polynomial 0xEDB88320), table built on first use.
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string encode_point(const CheckpointPoint& point) {
  std::string payload;
  payload += std::to_string(point.index);
  payload += '|';
  payload += sanitize(point.id, "|");
  payload += '|';
  payload += to_string(point.outcome);
  payload += '|';
  payload += std::to_string(point.attempts);
  payload += '|';
  payload += sanitize(point.message, "|");
  payload += '|';
  payload += sanitize(point.rng_state, "|");
  payload += '|';
  for (std::size_t i = 0; i < point.metrics.size(); ++i) {
    if (i > 0) payload += ',';
    payload += sanitize(point.metrics[i].first, "|,=");
    payload += '=';
    payload += hex_double(point.metrics[i].second);
  }
  char crc[16];
  std::snprintf(crc, sizeof crc, "%08x", crc32(payload));
  return std::string("P ") + crc + " " + payload;
}

bool decode_point(const std::string& line, CheckpointPoint& out) {
  // "P <8 hex> <payload>"
  if (line.size() < 11 || line.compare(0, 2, "P ") != 0 || line[10] != ' ') {
    return false;
  }
  const std::string crc_text = line.substr(2, 8);
  char* end = nullptr;
  const unsigned long crc_stored = std::strtoul(crc_text.c_str(), &end, 16);
  if (end != crc_text.c_str() + 8) return false;
  const std::string payload = line.substr(11);
  if (crc32(payload) != static_cast<std::uint32_t>(crc_stored)) return false;

  const std::vector<std::string> fields = split(payload, '|');
  if (fields.size() != 7) return false;

  CheckpointPoint p;
  std::size_t attempts = 0;
  if (!parse_size(fields[0], p.index)) return false;
  p.id = fields[1];
  if (!outcome_from_string(fields[2], p.outcome)) return false;
  if (!parse_size(fields[3], attempts)) return false;
  p.attempts = static_cast<unsigned>(attempts);
  p.message = fields[4];
  p.rng_state = fields[5];
  if (!fields[6].empty()) {
    for (const std::string& pair : split(fields[6], ',')) {
      const std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) return false;
      double value = 0.0;
      if (!parse_double(pair.substr(eq + 1), value)) return false;
      p.metrics.emplace_back(pair.substr(0, eq), value);
    }
  }
  out = std::move(p);
  return true;
}

void open_checkpoint(const std::string& path, const std::string& sweep_name) {
  PERFORMA_EXPECTS(!path.empty(), "open_checkpoint: empty path");
  if (std::FILE* existing = std::fopen(path.c_str(), "r")) {
    char line[512];
    const bool got = std::fgets(line, sizeof line, existing) != nullptr;
    std::fclose(existing);
    std::string have = got ? line : "";
    while (!have.empty() && (have.back() == '\n' || have.back() == '\r')) {
      have.pop_back();
    }
    int version = 0;
    std::string name;
    const bool parsed = parse_header(have, version, name);
    PERFORMA_EXPECTS(
        parsed && version >= kMinCheckpointVersion &&
            version <= kCheckpointVersion &&
            name == sanitize(sweep_name, "|"),
        "open_checkpoint: '" + path + "' exists but its header does not "
        "match this sweep/version (have '" + have + "', want '" +
        header_line(kCheckpointVersion, sweep_name) + "' or a v" +
        std::to_string(kMinCheckpointVersion) + " equivalent)");
    return;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw NumericalError("open_checkpoint: cannot create '" + path + "'");
  }
  std::fprintf(f, "%s\n",
               header_line(kCheckpointVersion, sweep_name).c_str());
  std::fflush(f);
  std::fclose(f);
}

void append_point(const std::string& path, const CheckpointPoint& point,
                  bool sync) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    throw NumericalError("append_point: cannot open '" + path + "'");
  }
  const std::string record = encode_point(point);
  std::fprintf(f, "%s\n", record.c_str());
  std::fflush(f);
  if (sync && ::fsync(::fileno(f)) != 0) {
    std::fclose(f);
    throw NumericalError("append_point: fsync failed on '" + path + "'");
  }
  std::fclose(f);

  static obs::Counter& records = obs::counter("runner.checkpoint.records");
  static obs::Counter& bytes = obs::counter("runner.checkpoint.bytes");
  records.add(1);
  bytes.add(record.size() + 1);  // +1: the terminating newline
}

SweepCheckpoint load_checkpoint(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    throw NumericalError("load_checkpoint: cannot open '" + path + "'");
  }
  SweepCheckpoint ck;
  std::string line;
  char buf[4096];
  bool saw_header = false;
  bool line_done;
  // id -> outcome of the latest record seen, for v2 duplicate rejection.
  std::vector<std::pair<std::string, Outcome>> latest;
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line += buf;
    line_done = !line.empty() && line.back() == '\n';
    if (!line_done && !std::feof(f)) continue;  // long line, keep reading
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (!saw_header) {
      int version = 0;
      std::string name;
      if (!parse_header(line, version, name) ||
          version < kMinCheckpointVersion || version > kCheckpointVersion) {
        std::fclose(f);
        throw InvalidArgument(
            "load_checkpoint: '" + path + "' is not a v" +
            std::to_string(kMinCheckpointVersion) + "..v" +
            std::to_string(kCheckpointVersion) + " checkpoint (header '" +
            line + "')");
      }
      ck.version = version;
      ck.sweep_name = name;
      saw_header = true;
    } else if (!line.empty()) {
      CheckpointPoint p;
      if (decode_point(line, p)) {
        if (ck.version >= 2) {
          bool duplicate_ok = false;
          bool seen = false;
          for (auto& [id, outcome] : latest) {
            if (id != p.id) continue;
            seen = true;
            duplicate_ok = outcome == Outcome::kOk;
            outcome = p.outcome;  // degraded records may be superseded
            break;
          }
          if (duplicate_ok) {
            std::fclose(f);
            throw InvalidArgument(
                "load_checkpoint: '" + path + "' holds a second record for "
                "point '" + p.id + "', which already has an ok record -- "
                "two sweeps appear to have shared this checkpoint");
          }
          if (!seen) latest.emplace_back(p.id, p.outcome);
        }
        ck.points.push_back(std::move(p));
      } else {
        ++ck.dropped_records;  // torn append (SIGKILL mid-write) or damage
      }
    }
    line.clear();
  }
  std::fclose(f);
  if (!saw_header) {
    throw InvalidArgument("load_checkpoint: '" + path + "' is empty");
  }
  return ck;
}

}  // namespace performa::runner
