#include "runner/sweep.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <set>
#include <thread>

#include "linalg/errors.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/random.h"

namespace performa::runner {

namespace {

using Clock = std::chrono::steady_clock;

std::atomic<bool> g_interrupted{false};

void on_signal(int signo) {
  g_interrupted.store(true, std::memory_order_relaxed);
  // Restore the default disposition: the first signal requests a clean
  // wind-down, a second one kills the process the usual way.
  ::signal(signo, SIG_DFL);
}

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// One scheduler slot: owns at most one in-flight point and walks it
// through running -> backing-off -> running ... until the point is done
// (delivered ok or recorded degraded), then frees itself for the next
// point in request order.
struct Slot {
  enum class State { kIdle, kRunning, kBackoff };
  State state = State::kIdle;
  std::size_t index = 0;           ///< request index of the owned point
  unsigned attempt = 0;            ///< attempts consumed (1-based)
  WorkerHandle worker;             ///< live worker when kRunning
  bool timed_out = false;          ///< this attempt was SIGKILLed at deadline
  bool has_deadline = false;       ///< kRunning: timeout armed
  Clock::time_point deadline{};    ///< kRunning: timeout; kBackoff: retry at
  Clock::time_point first_dispatch{};
  std::unique_ptr<obs::Span> span;  ///< "runner.point": dispatch -> finalize
};

// Pool instruments, registered once. Counters accumulate over the
// process lifetime (a progress meter subtracts its start-of-sweep
// baseline); gauges describe the current pool state.
struct SweepMetrics {
  obs::Counter& done = obs::counter("runner.points.done");
  obs::Counter& degraded = obs::counter("runner.points.degraded");
  obs::Counter& retries = obs::counter("runner.retries");
  obs::Counter& timeouts = obs::counter("runner.timeouts");
  obs::Gauge& inflight = obs::gauge("runner.points.inflight");
  obs::Gauge& retrying = obs::gauge("runner.points.retrying");
  obs::Gauge& latency_ema = obs::gauge("runner.point.latency_ema");
  obs::Histogram& latency = obs::histogram("runner.point.seconds");
};

SweepMetrics& sweep_metrics() {
  static SweepMetrics m;
  return m;
}

// --progress rendering, driven by the live metrics registry. On a tty
// the status line redraws in place (ANSI carriage-return + erase); when
// stderr is a pipe or file the meter degrades to one plain, newline-
// terminated line per completed point -- no escape codes, no partial
// lines -- so logs and CI transcripts stay clean.
class ProgressMeter {
 public:
  ProgressMeter(const std::string& name, std::size_t total, bool enabled)
      : name_(name),
        total_(total),
        enabled_(enabled),
        tty_(enabled && ::isatty(STDERR_FILENO) == 1),
        done0_(sweep_metrics().done.value()),
        degraded0_(sweep_metrics().degraded.value()),
        retries0_(sweep_metrics().retries.value()) {}

  ~ProgressMeter() {
    if (dirty_) std::fputc('\n', stderr);  // terminate the in-place line
  }

  /// Pool-state pulse: remember the worker counts and, on a tty, redraw.
  void tick(std::size_t running, std::size_t backoff) {
    if (!enabled_) return;
    running_ = running;
    backoff_ = backoff;
    if (tty_) redraw();
  }

  /// A point was finalized (metrics already updated by the caller).
  void point_done(const CheckpointPoint& record, double elapsed) {
    if (!enabled_) return;
    if (tty_) {
      redraw();
      return;
    }
    const SweepMetrics& m = sweep_metrics();
    std::fprintf(stderr,
                 "[sweep %s] done %s: %s attempts=%u %.2fs "
                 "(%llu/%zu done, %llu degraded, %zu running, "
                 "%zu retrying, ema %.2fs)\n",
                 name_.c_str(), record.id.c_str(), to_string(record.outcome),
                 record.attempts, elapsed, delta(m.done.value(), done0_),
                 total_, delta(m.degraded.value(), degraded0_), running_,
                 backoff_, m.latency_ema.value());
  }

 private:
  static unsigned long long delta(std::uint64_t now, std::uint64_t base) {
    return static_cast<unsigned long long>(now - base);
  }

  void redraw() {
    const SweepMetrics& m = sweep_metrics();
    std::fprintf(stderr,
                 "\r\033[K[sweep %s] %llu/%zu done, %llu degraded, "
                 "%zu running, %zu retrying, %llu retries, ema %.2fs",
                 name_.c_str(), delta(m.done.value(), done0_), total_,
                 delta(m.degraded.value(), degraded0_), running_, backoff_,
                 delta(m.retries.value(), retries0_), m.latency_ema.value());
    std::fflush(stderr);
    dirty_ = true;
  }

  std::string name_;
  std::size_t total_;
  bool enabled_;
  bool tty_;
  std::uint64_t done0_, degraded0_, retries0_;
  std::size_t running_ = 0, backoff_ = 0;
  bool dirty_ = false;
};

}  // namespace

unsigned resolve_jobs(unsigned jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void install_signal_handlers() {
  struct sigaction sa;
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll/nanosleep must wake up
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  // SIGHUP (lost terminal, daemon manager poking a process group) used
  // to fall through to the default disposition and kill the sweep with
  // the checkpoint mid-flight; treat it exactly like SIGINT/SIGTERM --
  // wind down cleanly. performad claims SIGHUP for config reload and
  // installs its own handler *after* this one.
  ::sigaction(SIGHUP, &sa, nullptr);
}

bool sweep_interrupted() noexcept {
  return g_interrupted.load(std::memory_order_relaxed);
}

void raise_interrupt() noexcept {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt() noexcept {
  g_interrupted.store(false, std::memory_order_relaxed);
}

SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPointSpec>& specs,
                      const SweepOptions& options) {
  options.retry.validate();
  PERFORMA_EXPECTS(options.timeout_seconds >= 0.0,
                   "run_sweep: timeout must be >= 0");
  PERFORMA_EXPECTS(options.isolate || options.timeout_seconds == 0.0,
                   "run_sweep: timeouts require subprocess isolation");
  PERFORMA_EXPECTS(options.isolate || options.jobs == 1,
                   "run_sweep: parallel jobs require subprocess isolation");
  PERFORMA_EXPECTS(options.drain_grace_seconds >= 0.0,
                   "run_sweep: drain grace must be >= 0");
  PERFORMA_EXPECTS(!options.resume || !options.checkpoint_path.empty(),
                   "run_sweep: resume needs a checkpoint path");
  {
    std::set<std::string> ids;
    for (const SweepPointSpec& s : specs) {
      PERFORMA_EXPECTS(!s.id.empty() && static_cast<bool>(s.fn),
                       "run_sweep: every point needs an id and a function");
      PERFORMA_EXPECTS(ids.insert(s.id).second,
                       "run_sweep: duplicate point id '" + s.id + "'");
    }
  }

  SweepMetrics& metrics = sweep_metrics();
  obs::Span sweep_span("runner.sweep");
  sweep_span.annotate("name", name);
  sweep_span.annotate("points", static_cast<std::uint64_t>(specs.size()));
  ProgressMeter progress(name, specs.size(), options.progress);

  const bool checkpointing = !options.checkpoint_path.empty();
  SweepCheckpoint prior;
  if (checkpointing) {
    open_checkpoint(options.checkpoint_path, name);
    if (options.resume) {
      prior = load_checkpoint(options.checkpoint_path);
      if (prior.dropped_records > 0) {
        PERFORMA_LOG(kWarn, "sweep.checkpoint_torn")
            .kv("sweep", name)
            .kv("dropped",
                static_cast<std::uint64_t>(prior.dropped_records));
        if (options.verbose) {
          std::fprintf(stderr,
                       "[sweep %s] dropped %zu torn checkpoint record(s)\n",
                       name.c_str(), prior.dropped_records);
        }
      }
    }
  }

  SweepResult sweep;

  // Request-order delivery: every finished point parks here under its
  // request index, whatever order the workers completed in.
  std::vector<std::optional<CheckpointPoint>> done(specs.size());

  // Resume: trust completed points, give degraded ones a fresh chance.
  if (options.resume) {
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (const CheckpointPoint* old = prior.find(specs[i].id);
          old != nullptr && old->outcome == Outcome::kOk) {
        done[i] = *old;
        done[i]->index = i;
        ++sweep.reused;
        if (options.verbose) {
          std::fprintf(stderr, "[sweep %s] %s: reused from checkpoint\n",
                       name.c_str(), specs[i].id.c_str());
        }
      }
    }
  }

  // Record a finished point: metrics, checkpoint, observability,
  // delivery.
  const auto finalize = [&](CheckpointPoint&& record, double elapsed) {
    if (record.outcome != Outcome::kOk) {
      ++sweep.degraded;
      metrics.degraded.add(1);
    }
    metrics.done.add(1);
    metrics.latency.record(elapsed);
    const double prev_ema = metrics.latency_ema.value();
    metrics.latency_ema.set(prev_ema == 0.0 ? elapsed
                                            : 0.8 * prev_ema + 0.2 * elapsed);
    if (checkpointing) {
      append_point(options.checkpoint_path, record,
                   options.sync_checkpoint);
    }
    if (options.verbose) {
      std::fprintf(stderr, "[sweep %s] %s: %s after %u attempt(s)\n",
                   name.c_str(), record.id.c_str(),
                   to_string(record.outcome), record.attempts);
    }
    progress.point_done(record, elapsed);
    const std::size_t index = record.index;
    done[index] = std::move(record);
  };

  const auto attempt_note = [&](const SweepPointSpec& spec, unsigned attempt,
                                const WorkerReport& report) {
    if (report.outcome != Outcome::kOk) {
      PERFORMA_LOG(kWarn, "sweep.attempt_failed")
          .kv("sweep", name)
          .kv("point", spec.id)
          .kv("attempt", static_cast<std::uint64_t>(attempt))
          .kv("outcome", to_string(report.outcome))
          .kv("error", report.message)
          .kv("elapsed_s", report.elapsed_seconds);
    }
    if (options.verbose) {
      std::fprintf(stderr, "[sweep %s] %s: attempt %u -> %s (%s)\n",
                   name.c_str(), spec.id.c_str(), attempt,
                   to_string(report.outcome), report.message.c_str());
    }
  };

  if (!options.isolate) {
    // In-process fallback: sequential by construction (a single address
    // space cannot run points concurrently *and* contain their crashes).
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (sweep_interrupted()) {
        sweep.interrupted = true;
        break;
      }
      if (done[i].has_value()) continue;  // reused from the checkpoint
      const SweepPointSpec& spec = specs[i];
      const Clock::time_point started = Clock::now();
      obs::Span point_span("runner.point");
      point_span.annotate("id", spec.id);
      metrics.inflight.set(1.0);
      CheckpointPoint record;
      record.index = i;
      record.id = spec.id;
      for (unsigned attempt = 1;; ++attempt) {
        const WorkerReport report = run_point_inline(spec.fn);
        if (sweep_interrupted()) {
          sweep.interrupted = true;
          break;
        }
        record.outcome = report.outcome;
        record.attempts = attempt;
        record.message = report.message;
        if (report.outcome == Outcome::kOk) {
          record.metrics = report.result.metrics;
          record.rng_state = report.result.rng_state;
          break;
        }
        attempt_note(spec, attempt, report);
        if (!is_transient(report.outcome) ||
            attempt >= options.retry.max_attempts) {
          break;  // record the degraded placeholder and move on
        }
        metrics.retries.add(1);
        const double backoff = options.retry.backoff_seconds(
            attempt, sim::derive_seed(options.backoff_seed, i));
        metrics.retrying.set(1.0);
        sleep_seconds(backoff);
        metrics.retrying.set(0.0);
      }
      metrics.inflight.set(0.0);
      if (sweep.interrupted) break;
      point_span.annotate("outcome", to_string(record.outcome));
      point_span.annotate("attempts",
                          static_cast<std::uint64_t>(record.attempts));
      finalize(std::move(record), seconds_since(started));
    }
  } else {
    // Worker-pool scheduler: up to `jobs` slots, each owning one point
    // at a time through its retry state machine. One poll(2) multiplexes
    // every live worker plus the earliest timeout/backoff/drain deadline.
    const unsigned jobs = resolve_jobs(options.jobs);
    std::vector<Slot> slots(
        std::max<std::size_t>(1, std::min<std::size_t>(jobs, specs.size())));
    std::size_t next = 0;         // next request index to consider
    std::size_t outstanding = 0;  // points currently owned by a slot
    bool draining = false;
    Clock::time_point drain_deadline{};

    const auto start_attempt = [&](Slot& slot, std::size_t index,
                                   unsigned attempt) {
      slot.state = Slot::State::kRunning;
      slot.index = index;
      slot.attempt = attempt;
      slot.timed_out = false;
      slot.worker = spawn_worker(specs[index].fn);
      if (attempt == 1) {
        slot.first_dispatch = slot.worker.started;
        slot.span = std::make_unique<obs::Span>("runner.point");
        slot.span->annotate("id", specs[index].id);
      }
      slot.has_deadline = options.timeout_seconds > 0.0;
      if (slot.has_deadline) {
        slot.deadline =
            slot.worker.started +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(options.timeout_seconds));
      }
    };

    // A worker reached EOF: reap, classify, advance the slot's state
    // machine (deliver, back off for a retry, or abandon under drain).
    const auto settle = [&](Slot& slot) {
      const WorkerReport report =
          reap_worker(slot.worker, slot.timed_out, options.timeout_seconds);
      slot.worker = WorkerHandle{};
      const SweepPointSpec& spec = specs[slot.index];

      if (report.outcome == Outcome::kTimeout) metrics.timeouts.add(1);

      if (report.outcome != Outcome::kOk && draining) {
        // The worker most likely died from the shared signal or the
        // drain SIGKILL; recording a bogus crash would poison resume.
        if (slot.span) {
          slot.span->annotate("outcome", "abandoned");
          slot.span.reset();
        }
        slot.state = Slot::State::kIdle;
        --outstanding;
        return;
      }
      if (report.outcome != Outcome::kOk) {
        attempt_note(spec, slot.attempt, report);
        if (is_transient(report.outcome) &&
            slot.attempt < options.retry.max_attempts) {
          metrics.retries.add(1);
          const double backoff = options.retry.backoff_seconds(
              slot.attempt,
              sim::derive_seed(options.backoff_seed, slot.index));
          slot.state = Slot::State::kBackoff;
          slot.deadline =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(backoff));
          return;
        }
      }
      CheckpointPoint record;
      record.index = slot.index;
      record.id = spec.id;
      record.outcome = report.outcome;
      record.attempts = slot.attempt;
      record.message = report.message;
      if (report.outcome == Outcome::kOk) {
        record.metrics = report.result.metrics;
        record.rng_state = report.result.rng_state;
      }
      if (slot.span) {
        slot.span->annotate("outcome", to_string(record.outcome));
        slot.span->annotate("attempts",
                            static_cast<std::uint64_t>(record.attempts));
        slot.span.reset();
      }
      finalize(std::move(record), seconds_since(slot.first_dispatch));
      slot.state = Slot::State::kIdle;
      --outstanding;
    };

    while (true) {
      if (!draining && sweep_interrupted()) {
        draining = true;
        sweep.interrupted = true;
        drain_deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(options.drain_grace_seconds));
        for (Slot& slot : slots) {
          // A point waiting out a backoff has no work in flight worth
          // draining: abandon it, resume will re-run it.
          if (slot.state == Slot::State::kBackoff) {
            if (slot.span) {
              slot.span->annotate("outcome", "abandoned");
              slot.span.reset();
            }
            slot.state = Slot::State::kIdle;
            --outstanding;
          }
        }
      }

      if (!draining) {
        for (Slot& slot : slots) {
          if (slot.state != Slot::State::kIdle) continue;
          while (next < specs.size() && done[next].has_value()) ++next;
          if (next >= specs.size()) break;
          start_attempt(slot, next++, 1);
          ++outstanding;
        }
      }

      // Publish the pool state (read by --progress and perfctl
      // --metrics) once per scheduler turn, not per transition.
      {
        std::size_t running = 0, backing_off = 0;
        for (const Slot& slot : slots) {
          if (slot.state == Slot::State::kRunning) ++running;
          if (slot.state == Slot::State::kBackoff) ++backing_off;
        }
        metrics.inflight.set(static_cast<double>(running));
        metrics.retrying.set(static_cast<double>(backing_off));
        progress.tick(running, backing_off);
      }
      if (outstanding == 0) break;

      // One poll covers every live worker and the earliest deadline
      // (per-slot timeout, per-slot backoff expiry, drain cutoff).
      std::vector<struct pollfd> pfds;
      std::vector<Slot*> pfd_slots;
      bool have_deadline = draining;
      Clock::time_point earliest = drain_deadline;
      for (Slot& slot : slots) {
        if (slot.state == Slot::State::kRunning) {
          if (!slot.worker.eof) {
            pfds.push_back({slot.worker.fd, POLLIN, 0});
            pfd_slots.push_back(&slot);
          }
          if (slot.has_deadline && !slot.timed_out &&
              (!have_deadline || slot.deadline < earliest)) {
            earliest = slot.deadline;
            have_deadline = true;
          }
        } else if (slot.state == Slot::State::kBackoff) {
          if (!have_deadline || slot.deadline < earliest) {
            earliest = slot.deadline;
            have_deadline = true;
          }
        }
      }
      int timeout_ms = -1;
      if (have_deadline) {
        const double remaining =
            std::chrono::duration<double>(earliest - Clock::now()).count();
        timeout_ms =
            remaining <= 0.0 ? 0 : static_cast<int>(remaining * 1e3) + 1;
      }
      const int ready = ::poll(pfds.empty() ? nullptr : pfds.data(),
                               static_cast<nfds_t>(pfds.size()), timeout_ms);
      if (ready < 0 && errno != EINTR) {
        // poll() itself failed (fd exhaustion?): nothing sane to wait
        // on. Kill what is in flight and stop; the checkpoint holds
        // every completed point.
        for (Slot& slot : slots) {
          if (slot.state == Slot::State::kRunning) {
            kill_worker(slot.worker);
            settle(slot);
          }
        }
        sweep.interrupted = true;
        break;
      }
      if (ready > 0) {
        for (std::size_t p = 0; p < pfds.size(); ++p) {
          if (pfds[p].revents == 0) continue;
          Slot& slot = *pfd_slots[p];
          drain_worker(slot.worker);
          if (slot.worker.eof) settle(slot);
        }
      }

      const Clock::time_point now = Clock::now();
      for (Slot& slot : slots) {
        if (slot.state == Slot::State::kRunning && slot.has_deadline &&
            !slot.timed_out && now >= slot.deadline) {
          kill_worker(slot.worker);  // EOF arrives promptly; settled above
          slot.timed_out = true;
        } else if (slot.state == Slot::State::kBackoff &&
                   now >= slot.deadline) {
          start_attempt(slot, slot.index, slot.attempt + 1);
        }
      }
      if (draining && now >= drain_deadline) {
        for (Slot& slot : slots) {
          if (slot.state == Slot::State::kRunning) {
            kill_worker(slot.worker);
            settle(slot);
          }
        }
      }
    }
    metrics.inflight.set(0.0);
    metrics.retrying.set(0.0);
  }

  sweep_span.annotate("degraded",
                      static_cast<std::uint64_t>(sweep.degraded));
  sweep_span.annotate("reused", static_cast<std::uint64_t>(sweep.reused));
  if (sweep.interrupted) sweep_span.annotate("interrupted", "true");

  // Deliver in request order. An interrupted sweep returns the longest
  // completed prefix -- out-of-order completions past the first gap are
  // already safe in the checkpoint and come back on resume.
  for (auto& record : done) {
    if (!record.has_value()) {
      if (!sweep.interrupted) {
        // Cannot happen: every non-interrupted point was finalized.
        throw NumericalError("run_sweep: point list has an internal gap");
      }
      break;
    }
    sweep.points.push_back(std::move(*record));
  }
  return sweep;
}

}  // namespace performa::runner
