#include "runner/sweep.h"

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <set>

#include "linalg/errors.h"
#include "sim/random.h"

namespace performa::runner {

namespace {

std::atomic<bool> g_interrupted{false};

void on_signal(int signo) {
  g_interrupted.store(true, std::memory_order_relaxed);
  // Restore the default disposition: the first signal requests a clean
  // wind-down, a second one kills the process the usual way.
  ::signal(signo, SIG_DFL);
}

}  // namespace

void install_signal_handlers() {
  struct sigaction sa;
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll/nanosleep must wake up
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

bool sweep_interrupted() noexcept {
  return g_interrupted.load(std::memory_order_relaxed);
}

void raise_interrupt() noexcept {
  g_interrupted.store(true, std::memory_order_relaxed);
}

void clear_interrupt() noexcept {
  g_interrupted.store(false, std::memory_order_relaxed);
}

SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPointSpec>& specs,
                      const SweepOptions& options) {
  options.retry.validate();
  PERFORMA_EXPECTS(options.timeout_seconds >= 0.0,
                   "run_sweep: timeout must be >= 0");
  PERFORMA_EXPECTS(options.isolate || options.timeout_seconds == 0.0,
                   "run_sweep: timeouts require subprocess isolation");
  PERFORMA_EXPECTS(!options.resume || !options.checkpoint_path.empty(),
                   "run_sweep: resume needs a checkpoint path");
  {
    std::set<std::string> ids;
    for (const SweepPointSpec& s : specs) {
      PERFORMA_EXPECTS(!s.id.empty() && static_cast<bool>(s.fn),
                       "run_sweep: every point needs an id and a function");
      PERFORMA_EXPECTS(ids.insert(s.id).second,
                       "run_sweep: duplicate point id '" + s.id + "'");
    }
  }

  const bool checkpointing = !options.checkpoint_path.empty();
  SweepCheckpoint prior;
  if (checkpointing) {
    open_checkpoint(options.checkpoint_path, name);
    if (options.resume) {
      prior = load_checkpoint(options.checkpoint_path);
      if (options.verbose && prior.dropped_records > 0) {
        std::fprintf(stderr,
                     "[sweep %s] dropped %zu torn checkpoint record(s)\n",
                     name.c_str(), prior.dropped_records);
      }
    }
  }

  SweepResult sweep;
  sweep.points.reserve(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (sweep_interrupted()) {
      sweep.interrupted = true;
      break;
    }
    const SweepPointSpec& spec = specs[i];

    // Resume: trust completed points, give degraded ones a fresh chance.
    if (options.resume) {
      if (const CheckpointPoint* done = prior.find(spec.id);
          done != nullptr && done->outcome == Outcome::kOk) {
        sweep.points.push_back(*done);
        ++sweep.reused;
        if (options.verbose) {
          std::fprintf(stderr, "[sweep %s] %s: reused from checkpoint\n",
                       name.c_str(), spec.id.c_str());
        }
        continue;
      }
    }

    CheckpointPoint record;
    record.index = i;
    record.id = spec.id;
    for (unsigned attempt = 1;; ++attempt) {
      const WorkerReport report =
          options.isolate
              ? run_point_isolated(spec.fn, options.timeout_seconds)
              : run_point_inline(spec.fn);
      if (sweep_interrupted()) {
        // The worker likely died from the same signal (same process
        // group); do not record a bogus crash for it.
        sweep.interrupted = true;
        break;
      }
      record.outcome = report.outcome;
      record.attempts = attempt;
      record.message = report.message;
      if (report.outcome == Outcome::kOk) {
        record.metrics = report.result.metrics;
        record.rng_state = report.result.rng_state;
        break;
      }
      if (options.verbose) {
        std::fprintf(stderr, "[sweep %s] %s: attempt %u -> %s (%s)\n",
                     name.c_str(), spec.id.c_str(), attempt,
                     to_string(report.outcome), report.message.c_str());
      }
      if (!is_transient(report.outcome) ||
          attempt >= options.retry.max_attempts) {
        break;  // record the degraded placeholder and move on
      }
      const double backoff = options.retry.backoff_seconds(
          attempt, sim::derive_seed(options.backoff_seed, i));
      sleep_seconds(backoff);
    }
    if (sweep.interrupted) break;

    if (record.outcome != Outcome::kOk) ++sweep.degraded;
    if (checkpointing) append_point(options.checkpoint_path, record);
    if (options.verbose) {
      std::fprintf(stderr, "[sweep %s] %s: %s after %u attempt(s)\n",
                   name.c_str(), spec.id.c_str(), to_string(record.outcome),
                   record.attempts);
    }
    sweep.points.push_back(std::move(record));
  }
  return sweep;
}

}  // namespace performa::runner
