// Supervised sweep execution: the resilience layer between "a list of
// experiment points" and "a list of results".
//
// Points run in isolated forked workers (see worker.h) under a
// wall-clock timeout, up to `jobs` of them in flight at once. Each live
// point is owned by a scheduler *slot* that walks a small state machine
// (running -> backing-off -> running ... -> done): transient failures
// (timeout, crash) are retried with capped, jittered exponential
// backoff; deterministic failures (solver failure, unstable model) are
// recorded once as degraded placeholder points and the sweep
// *continues*. Results are delivered in request order regardless of
// completion order -- a `-j 8` sweep produces the same point list,
// bit-exactly, as a `-j 1` sweep of the same specs.
//
// Completed points are appended to a checksummed checkpoint file as
// they finish (completion order; the v2 checkpoint format is keyed by
// point id, so resume is order-independent). A killed sweep restarted
// with resume=true re-reads the checkpoint, reuses every completed
// point bit-exactly (metrics are persisted as hex-floats) and only
// re-executes what is missing. SIGINT/SIGTERM wind the sweep down:
// nothing new is dispatched, in-flight workers get a bounded grace
// period to finish (and are recorded if they do), then are SIGKILLed --
// the checkpoint is already flushed point-by-point, so the final state
// is always on disk.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/checkpoint.h"
#include "runner/retry.h"
#include "runner/worker.h"

namespace performa::runner {

/// One point of a sweep: a stable identifier plus the computation.
struct SweepPointSpec {
  std::string id;
  PointFn fn;
};

struct SweepOptions {
  /// Checkpoint file; empty disables checkpointing.
  std::string checkpoint_path;
  /// Reuse completed points from the checkpoint instead of re-running
  /// them. Points previously recorded as degraded are retried (they get
  /// a fresh chance); ok points are trusted bit-exactly.
  bool resume = false;
  /// fsync every checkpoint append (see append_point): survives
  /// power-loss-style kills, costs a disk round-trip per point. Off by
  /// default -- sweeps favour throughput; the daemon's journal, which
  /// *is* the recovery story, defaults the equivalent flag on.
  bool sync_checkpoint = false;
  /// Per-attempt wall-clock budget for one point; 0 = unlimited.
  /// Requires isolate (an in-process point cannot be preempted).
  double timeout_seconds = 0.0;
  RetryPolicy retry;
  /// Run points in forked worker subprocesses (the default). Disable
  /// only where fork is unavailable; inline points lose timeout
  /// enforcement, crash containment, and parallelism.
  bool isolate = true;
  /// Maximum points in flight at once. 1 = sequential (the scheduling
  /// and output of the pre-parallel runner, byte for byte); 0 = one per
  /// hardware thread. Values > 1 require isolate.
  unsigned jobs = 1;
  /// Wind-down grace period: after SIGINT/SIGTERM, in-flight workers
  /// may run this many more seconds (their results are still recorded)
  /// before being SIGKILLed.
  double drain_grace_seconds = 5.0;
  /// Seed for the deterministic retry-backoff jitter.
  std::uint64_t backoff_seed = 0x9e3779b9ULL;
  /// Progress notes on stderr (one line per point).
  bool verbose = false;
  /// One compact stderr line per *completed* point (id, outcome,
  /// attempts, seconds), in completion order: long parallel sweeps stay
  /// observable without tailing the checkpoint.
  bool progress = false;
};

/// What a sweep produced: one record per requested point, in request
/// order -- unless the sweep was interrupted, in which case the points
/// list holds the longest completed prefix (later points that finished
/// out of order are still in the checkpoint for resume).
struct SweepResult {
  std::vector<CheckpointPoint> points;
  std::size_t reused = 0;      ///< points restored from the checkpoint
  std::size_t degraded = 0;    ///< points recorded with outcome != ok
  bool interrupted = false;    ///< SIGINT/SIGTERM stopped the sweep early
};

/// Resolve a jobs request: 0 maps to the hardware thread count (at
/// least 1), anything else passes through.
unsigned resolve_jobs(unsigned jobs) noexcept;

/// Install SIGINT/SIGTERM/SIGHUP handlers that raise the sweep interrupt
/// flag (idempotent). The sweep then winds down (no new dispatches,
/// bounded drain) with the checkpoint fully flushed; a second signal
/// falls back to the default disposition, so a stuck sweep can still be
/// killed hard.
void install_signal_handlers();

/// True once SIGINT/SIGTERM/SIGHUP was received (or raise_interrupt was
/// called).
bool sweep_interrupted() noexcept;

/// Raise / clear the interrupt flag programmatically (tests, embedders).
void raise_interrupt() noexcept;
void clear_interrupt() noexcept;

/// Execute a sweep under supervision. `name` identifies the sweep in
/// checkpoint headers (resuming into a checkpoint of a different sweep
/// throws). Throws InvalidArgument on inconsistent options; worker
/// misbehaviour never throws.
SweepResult run_sweep(const std::string& name,
                      const std::vector<SweepPointSpec>& points,
                      const SweepOptions& options);

}  // namespace performa::runner
