#include "runner/retry.h"

#include <time.h>

#include <algorithm>
#include <cmath>

#include "linalg/errors.h"
#include "runner/sweep.h"
#include "sim/random.h"

namespace performa::runner {

void RetryPolicy::validate() const {
  PERFORMA_EXPECTS(max_attempts >= 1, "RetryPolicy: max_attempts >= 1");
  PERFORMA_EXPECTS(initial_backoff_seconds >= 0.0 && max_backoff_seconds >= 0.0,
                   "RetryPolicy: backoff durations must be >= 0");
  PERFORMA_EXPECTS(multiplier >= 1.0, "RetryPolicy: multiplier >= 1");
  PERFORMA_EXPECTS(jitter >= 0.0 && jitter < 1.0,
                   "RetryPolicy: jitter must lie in [0,1)");
}

double RetryPolicy::backoff_seconds(unsigned attempt,
                                    std::uint64_t seed) const {
  PERFORMA_EXPECTS(attempt >= 1, "RetryPolicy: attempt is 1-based");
  const double base =
      initial_backoff_seconds *
      std::pow(multiplier, static_cast<double>(attempt - 1));
  const double capped = std::min(base, max_backoff_seconds);
  // Deterministic jitter factor in [1-jitter, 1+jitter].
  const std::uint64_t z = sim::derive_seed(seed, attempt);
  const double u =
      static_cast<double>(z >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return capped * (1.0 - jitter + 2.0 * jitter * u);
}

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  struct timespec req;
  req.tv_sec = static_cast<time_t>(seconds);
  req.tv_nsec =
      static_cast<long>((seconds - static_cast<double>(req.tv_sec)) * 1e9);
  struct timespec rem;
  while (nanosleep(&req, &rem) != 0) {
    if (sweep_interrupted()) return;  // stop waiting, let the sweep wind down
    req = rem;
  }
}

}  // namespace performa::runner
