// Golden-result regression comparison.
//
// A golden file is simply a checkpoint that has been reviewed and
// committed; comparing a fresh sweep against it turns "the numbers
// moved" into a structured report with per-metric relative tolerances
// instead of an eyeball diff of CSV dumps.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "runner/checkpoint.h"

namespace performa::runner {

struct GoldenTolerances {
  /// Relative tolerance applied to any metric without an override.
  /// The default is intentionally tight: a correct resume is bit-exact,
  /// so golden comparisons should only be loosened on purpose.
  double default_rel_tol = 1e-12;
  /// Absolute slack: |actual - expected| <= abs_floor always passes
  /// (guards metrics whose golden value is exactly 0).
  double abs_floor = 0.0;
  /// Per-metric overrides of the relative tolerance.
  std::vector<std::pair<std::string, double>> per_metric;

  double tolerance_for(const std::string& metric) const noexcept;
};

/// One disagreement between golden and actual.
struct GoldenDiff {
  enum class Kind {
    kMissingPoint,    ///< golden point absent from the actual sweep
    kOutcome,         ///< outcomes differ (e.g. ok -> solver-failure)
    kMissingMetric,   ///< metric present in golden, absent in actual
    kValue,           ///< metric outside tolerance
  };
  Kind kind = Kind::kValue;
  std::string point_id;
  std::string metric;        ///< empty for point-level diffs
  double expected = 0.0;
  double actual = 0.0;
  double rel_error = 0.0;
};

struct GoldenReport {
  std::vector<GoldenDiff> diffs;
  std::size_t points_compared = 0;
  std::size_t metrics_compared = 0;

  bool ok() const noexcept { return diffs.empty(); }
  std::string to_string() const;
};

/// Compare an actual sweep against a golden one. Degraded golden points
/// (outcome != ok) only require the outcome to match; extra points in
/// the actual sweep are ignored (supersets are fine).
GoldenReport compare_to_golden(const SweepCheckpoint& golden,
                               const SweepCheckpoint& actual,
                               const GoldenTolerances& tol = {});

}  // namespace performa::runner
