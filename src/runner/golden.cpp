#include "runner/golden.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

namespace performa::runner {

double GoldenTolerances::tolerance_for(
    const std::string& metric) const noexcept {
  for (const auto& [name, tol] : per_metric) {
    if (name == metric) return tol;
  }
  return default_rel_tol;
}

GoldenReport compare_to_golden(const SweepCheckpoint& golden,
                               const SweepCheckpoint& actual,
                               const GoldenTolerances& tol) {
  GoldenReport report;
  std::set<std::string> seen;  // duplicates in the golden count once
  for (const CheckpointPoint& g : golden.points) {
    if (!seen.insert(g.id).second) continue;
    const CheckpointPoint* latest = golden.find(g.id);  // appends win
    const CheckpointPoint* a = actual.find(g.id);
    if (a == nullptr) {
      report.diffs.push_back(
          {GoldenDiff::Kind::kMissingPoint, g.id, "", 0.0, 0.0, 0.0});
      continue;
    }
    ++report.points_compared;
    if (latest->outcome != a->outcome) {
      GoldenDiff d;
      d.kind = GoldenDiff::Kind::kOutcome;
      d.point_id = g.id;
      d.metric = std::string(to_string(latest->outcome)) + " -> " +
                 to_string(a->outcome);
      report.diffs.push_back(std::move(d));
      continue;
    }
    for (const auto& [name, expected] : latest->metrics) {
      const double value = a->metric(name);
      if (std::isnan(value) && !std::isnan(expected)) {
        report.diffs.push_back(
            {GoldenDiff::Kind::kMissingMetric, g.id, name, expected, value,
             0.0});
        continue;
      }
      ++report.metrics_compared;
      const double abs_err = std::fabs(value - expected);
      if (abs_err <= tol.abs_floor) continue;
      if (std::isnan(expected) && std::isnan(value)) continue;
      const double scale = std::fabs(expected);
      const double rel =
          scale > 0.0 ? abs_err / scale
                      : (abs_err == 0.0 ? 0.0
                                        : std::numeric_limits<double>::infinity());
      if (!(rel <= tol.tolerance_for(name))) {
        report.diffs.push_back(
            {GoldenDiff::Kind::kValue, g.id, name, expected, value, rel});
      }
    }
  }
  return report;
}

std::string GoldenReport::to_string() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof line,
                "golden comparison: %zu point(s), %zu metric(s), %zu "
                "disagreement(s)\n",
                points_compared, metrics_compared, diffs.size());
  out += line;
  for (const GoldenDiff& d : diffs) {
    switch (d.kind) {
      case GoldenDiff::Kind::kMissingPoint:
        std::snprintf(line, sizeof line, "  %s: MISSING from actual sweep\n",
                      d.point_id.c_str());
        break;
      case GoldenDiff::Kind::kOutcome:
        std::snprintf(line, sizeof line, "  %s: outcome changed (%s)\n",
                      d.point_id.c_str(), d.metric.c_str());
        break;
      case GoldenDiff::Kind::kMissingMetric:
        std::snprintf(line, sizeof line,
                      "  %s/%s: metric missing (golden %.17g)\n",
                      d.point_id.c_str(), d.metric.c_str(), d.expected);
        break;
      case GoldenDiff::Kind::kValue:
        std::snprintf(line, sizeof line,
                      "  %s/%s: %.17g != golden %.17g (rel err %.3e)\n",
                      d.point_id.c_str(), d.metric.c_str(), d.actual,
                      d.expected, d.rel_error);
        break;
    }
    out += line;
  }
  return out;
}

}  // namespace performa::runner
