// Outcome taxonomy for supervised experiment points.
//
// Every point a sweep executes ends in exactly one of these states; the
// runner uses the classification to decide between retrying (transient
// faults: a hung or crashed worker) and recording a degraded placeholder
// (deterministic model/solver failures, which would fail identically on
// every retry).
#pragma once

#include <string>
#include <string_view>

namespace performa::runner {

/// Terminal classification of one experiment-point execution.
enum class Outcome {
  kOk,             ///< worker delivered a complete result
  kTimeout,        ///< worker exceeded its wall-clock budget (SIGKILLed)
  kCrash,          ///< worker died: signal, unexpected exit, bad payload
  kSolverFailure,  ///< qbd::SolverFailure -- fallback chain exhausted
  kUnstableModel,  ///< qbd::UnstableModel -- no stationary solution
  /// The point aborted cooperatively on its obs::Deadline (no SIGKILL
  /// needed). Transient like kTimeout: a retry gets a fresh budget.
  kDeadlineExceeded,
  /// qbd::TrustRejected -- the answer failed a posteriori verification
  /// even after the self-healing ladder. Deterministic like a solver
  /// failure: the same model re-verifies to the same verdict.
  kRejectedAnswer,
};

const char* to_string(Outcome o) noexcept;

/// Inverse of to_string; returns false on unknown text.
bool outcome_from_string(std::string_view text, Outcome& out) noexcept;

/// Transient outcomes (timeout, crash) are worth retrying; deterministic
/// ones (solver failure, unstable model) fail identically every time.
bool is_transient(Outcome o) noexcept;

// Exit codes a worker subprocess uses to report deterministic failures
// upward (chosen away from shells' 126/127/128+n conventions).
inline constexpr int kExitOk = 0;
inline constexpr int kExitSolverFailure = 40;
inline constexpr int kExitUnstableModel = 41;
inline constexpr int kExitError = 42;  ///< other exception -> kCrash
inline constexpr int kExitDeadlineExceeded = 43;  ///< cooperative abort
inline constexpr int kExitRejectedAnswer = 44;    ///< failed verification

/// Map a worker's exit code back to an outcome (signal deaths and
/// unknown codes are handled by the supervisor, not here).
Outcome outcome_from_exit_code(int code) noexcept;

/// Classify an in-flight exception (rethrown from a catch block) and
/// produce the matching exit code plus a one-line diagnostic. Used by
/// the worker child before _exit(), and by in-process execution.
struct ClassifiedError {
  int exit_code = kExitError;
  Outcome outcome = Outcome::kCrash;
  std::string message;
};
ClassifiedError classify_current_exception() noexcept;

}  // namespace performa::runner
