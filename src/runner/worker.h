// Isolated execution of one experiment point.
//
// Each point runs in a forked worker subprocess: a hang is contained by
// a wall-clock timeout (the worker is SIGKILLed), a crash (segfault,
// abort, OOM kill) takes down only the worker, and deterministic model
// failures travel back as dedicated exit codes. Results cross the
// parent/worker pipe as `metric <name> <hexfloat>` lines terminated by
// an `ok` sentinel, so a torn write (worker died mid-result) is
// detectable and classified as a crash rather than parsed as truth.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runner/outcome.h"

namespace performa::runner {

/// What one experiment point computes: named metric values in emission
/// order, plus (optionally) the simulator RNG-stream position consumed,
/// which the checkpoint layer persists for replay audits.
struct PointResult {
  std::vector<std::pair<std::string, double>> metrics;
  std::string rng_state;
};

/// Computes one point. Runs inside the forked worker when isolation is
/// on, so it must not depend on being able to mutate parent state.
using PointFn = std::function<PointResult()>;

/// One execution attempt, classified.
struct WorkerReport {
  Outcome outcome = Outcome::kCrash;
  PointResult result;      ///< meaningful only when outcome == kOk
  std::string message;     ///< diagnostics (exception text, signal, ...)
  double elapsed_seconds = 0.0;
};

/// Run `fn` in a forked subprocess with a wall-clock timeout
/// (0 = unlimited). On timeout the worker is SIGKILLed and the attempt
/// reports kTimeout. Never throws on worker misbehaviour -- that is the
/// point -- only on supervisor-side failures (fork/pipe exhaustion).
WorkerReport run_point_isolated(const PointFn& fn, double timeout_seconds);

/// Run `fn` in-process (no fork, no timeout enforcement): used where
/// subprocesses are unavailable or undesired. Exceptions are classified
/// exactly like worker exit codes.
WorkerReport run_point_inline(const PointFn& fn);

// Result-payload codec shared with the worker child, exposed for tests.
std::string encode_result(const PointResult& result);
bool decode_result(const std::string& payload, PointResult& out);

}  // namespace performa::runner
