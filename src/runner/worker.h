// Isolated execution of experiment points.
//
// Each point runs in a forked worker subprocess: a hang is contained by
// a wall-clock timeout (the worker is SIGKILLed), a crash (segfault,
// abort, OOM kill) takes down only the worker, and deterministic model
// failures travel back as dedicated exit codes. Results cross the
// parent/worker pipe as `metric <name> <hexfloat>` lines terminated by
// an `ok` sentinel, so a torn write (worker died mid-result) is
// detectable and classified as a crash rather than parsed as truth.
//
// Two layers:
//   - spawn_worker / drain_worker / reap_worker: non-blocking handle
//     primitives. The read end of the result pipe is O_NONBLOCK, so one
//     supervisor can multiplex many live workers with a single poll(2)
//     -- this is what the parallel sweep scheduler (sweep.h) builds on.
//   - run_point_isolated: the blocking single-worker convenience built
//     from the same primitives.
#pragma once

#include <sys/types.h>

#include <chrono>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "runner/outcome.h"

namespace performa::runner {

/// What one experiment point computes: named metric values in emission
/// order, plus (optionally) the simulator RNG-stream position consumed,
/// which the checkpoint layer persists for replay audits.
struct PointResult {
  std::vector<std::pair<std::string, double>> metrics;
  std::string rng_state;
};

/// Computes one point. Runs inside the forked worker when isolation is
/// on, so it must not depend on being able to mutate parent state.
using PointFn = std::function<PointResult()>;

/// One execution attempt, classified.
struct WorkerReport {
  Outcome outcome = Outcome::kCrash;
  PointResult result;      ///< meaningful only when outcome == kOk
  std::string message;     ///< diagnostics (exception text, signal, ...)
  double elapsed_seconds = 0.0;
};

/// A live worker subprocess. The supervisor owns the (non-blocking)
/// read end of the result pipe; the worker owns the write end, so EOF
/// on `fd` means the worker exited (or was killed) and can be reaped.
struct WorkerHandle {
  pid_t pid = -1;
  int fd = -1;             ///< O_NONBLOCK read end of the result pipe
  std::string payload;     ///< bytes drained from the pipe so far
  bool eof = false;        ///< worker closed its end (exit or kill)
  std::chrono::steady_clock::time_point started{};
  std::string trace_fragment;  ///< worker-private trace file, merged on reap
  std::string log_fragment;    ///< worker-private log file, merged on reap

  bool running() const noexcept { return pid > 0; }
};

/// Fork a worker for `fn`. Throws NumericalError when fork/pipe fail
/// (supervisor-side resource exhaustion); worker misbehaviour after a
/// successful spawn never throws -- it is classified by reap_worker.
WorkerHandle spawn_worker(const PointFn& fn);

/// Drain every byte currently available on the worker's pipe into
/// `payload` without blocking; sets `eof` once the worker closed its
/// end. Call after poll(2) reports the fd readable.
void drain_worker(WorkerHandle& worker);

/// SIGKILL the worker (idempotent; reap_worker still must run).
void kill_worker(const WorkerHandle& worker) noexcept;

/// Close the pipe, wait for the worker, and classify the attempt.
/// `timed_out` marks a supervisor-initiated SIGKILL at the wall-clock
/// deadline `timeout_seconds` (reported as kTimeout rather than kCrash).
/// Invalidates the handle.
WorkerReport reap_worker(WorkerHandle& worker, bool timed_out,
                         double timeout_seconds);

/// Run `fn` in a forked subprocess with a wall-clock timeout
/// (0 = unlimited). On timeout the worker is SIGKILLed and the attempt
/// reports kTimeout. Never throws on worker misbehaviour -- that is the
/// point -- only on supervisor-side failures (fork/pipe exhaustion).
WorkerReport run_point_isolated(const PointFn& fn, double timeout_seconds);

/// Run `fn` in-process (no fork, no timeout enforcement): used where
/// subprocesses are unavailable or undesired. Exceptions are classified
/// exactly like worker exit codes.
WorkerReport run_point_inline(const PointFn& fn);

// Result-payload codec shared with the worker child, exposed for tests.
std::string encode_result(const PointResult& result);
bool decode_result(const std::string& payload, PointResult& out);

}  // namespace performa::runner
