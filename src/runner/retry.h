// Retry policy for transient worker failures: exponential backoff,
// capped, with deterministic jitter.
//
// The jitter is derived from a seed (splitmix64 of seed x attempt), not
// from wall-clock entropy, so a resumed sweep schedules byte-identical
// retries -- determinism extends to the supervision layer itself.
#pragma once

#include <cstdint>

namespace performa::runner {

struct RetryPolicy {
  /// Total attempts per point, including the first one. 1 = no retries.
  unsigned max_attempts = 3;
  double initial_backoff_seconds = 0.5;
  double multiplier = 2.0;
  double max_backoff_seconds = 30.0;
  /// Backoff is scaled by a factor uniform in [1-jitter, 1+jitter] so
  /// restarted workers do not re-collide with whatever killed them.
  double jitter = 0.25;

  /// Throws InvalidArgument on nonsense (zero attempts, negative
  /// durations, multiplier < 1, jitter outside [0,1)).
  void validate() const;

  /// Backoff before retry number `attempt` (1 = after the first
  /// failure). Deterministic in (attempt, seed).
  double backoff_seconds(unsigned attempt, std::uint64_t seed) const;
};

/// Interruptible sleep (nanosleep resumed across EINTR unless the sweep
/// interrupt flag is raised).
void sleep_seconds(double seconds);

}  // namespace performa::runner
