// Versioned, checksummed, append-only sweep checkpoints.
//
// A checkpoint is a text file: one header line declaring the format
// version and the sweep name, then one self-checksummed record per
// completed point. Records are appended (and flushed) as points finish,
// so the file is crash-consistent by construction: a SIGKILL can at
// worst truncate the final record, which the loader detects via its
// CRC-32 and drops, keeping every earlier point. Metric values are
// stored as C99 hex-floats, so a resumed sweep reproduces prior numbers
// bit-exactly.
//
//   performa-checkpoint v2 <sweep-name>
//   P <crc32-hex> <index>|<id>|<outcome>|<attempts>|<message>|<rng>|<metrics>
//
// <metrics> is `name=hexfloat` pairs joined with ','. The CRC covers
// everything after the "P <crc32-hex> " prefix. Golden-result files use
// the same format: a verified checkpoint *is* a golden file.
//
// Version history (record format is identical in both):
//   v1  written by the sequential runner: records land in request
//       order, and later records for the same id silently supersede
//       earlier ones.
//   v2  written by the parallel scheduler: records may land in any
//       order (completion order under -j N), so resume is keyed purely
//       by point id. A record may supersede an earlier *degraded*
//       record for the same id (that is how resumed retries are
//       persisted), but a second record for an id that already has an
//       ok record is rejected at load time -- two ok records for one
//       point means two writers shared the file, and trusting either
//       silently would be a correctness bug.
// The loader reads both versions; new checkpoints are created as v2.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runner/outcome.h"

namespace performa::runner {

inline constexpr int kCheckpointVersion = 2;
inline constexpr int kMinCheckpointVersion = 1;

/// One completed (or degraded) experiment point.
struct CheckpointPoint {
  std::size_t index = 0;   ///< position in the sweep's point list
  std::string id;          ///< stable point identifier, e.g. "rho=0.35"
  Outcome outcome = Outcome::kOk;
  unsigned attempts = 1;   ///< executions consumed (retries included)
  std::string message;     ///< diagnostics for degraded points
  std::string rng_state;   ///< simulator RNG-stream position (optional)
  /// Metric values in emission order; empty for degraded points.
  std::vector<std::pair<std::string, double>> metrics;

  /// Value of one metric; NaN when absent.
  double metric(const std::string& name) const noexcept;
};

/// A loaded checkpoint file.
struct SweepCheckpoint {
  int version = kCheckpointVersion;
  std::string sweep_name;
  std::vector<CheckpointPoint> points;   ///< in file order, duplicates kept
  std::size_t dropped_records = 0;       ///< corrupt/truncated lines skipped

  /// Latest record for `id` (appends win), or nullptr.
  const CheckpointPoint* find(const std::string& id) const noexcept;
};

/// CRC-32 (IEEE 802.3, reflected) of `data`.
std::uint32_t crc32(std::string_view data);

/// Create `path` with a fresh v2 header when it does not exist; when it
/// does, validate that the header carries a supported version and this
/// sweep name (resuming a different sweep into the file is almost
/// certainly a mistake). Throws InvalidArgument on mismatch,
/// NumericalError on I/O failure.
void open_checkpoint(const std::string& path, const std::string& sweep_name);

/// Append one point record and flush it to disk. With `sync` the record
/// is also fsync'd before the call returns: a flush only moves bytes
/// into the kernel, so a *power-loss*-style kill can otherwise drop an
/// arbitrary suffix of flushed records -- or, worse, persist a torn
/// page whose prefix happens to parse. fsync closes that window at the
/// cost of one disk round-trip per record; the daemon's cache journal
/// defaults it on, high-throughput sweeps leave it off.
void append_point(const std::string& path, const CheckpointPoint& point,
                  bool sync = false);

/// Load a v1 or v2 checkpoint. Corrupt or truncated records are counted
/// in dropped_records and skipped; a bad header throws InvalidArgument.
/// In a v2 file a record for an id that already has an ok record throws
/// InvalidArgument (duplicate writer); v1 keeps its legacy appends-win
/// semantics.
SweepCheckpoint load_checkpoint(const std::string& path);

// Record codec, exposed for tests.
std::string encode_point(const CheckpointPoint& point);
bool decode_point(const std::string& line, CheckpointPoint& out);

}  // namespace performa::runner
